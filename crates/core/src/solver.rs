//! The RankHow exact solver: best-first branch-and-bound over indicator
//! hyperplanes.
//!
//! The paper hands Equation (2) to Gurobi and attributes the orders-of-
//! magnitude advantage over the PTIME TREE algorithm to two things
//! (Section III-B): the MILP solver reasons *holistically* about the
//! whole program, and it passes information across branches (bounds,
//! incumbents) instead of solving each arrangement cell in isolation.
//! This solver supplies exactly those ingredients, specialized to OPT's
//! geometry:
//!
//! - **search space**: nodes are partial side-assignments of indicator
//!   hyperplanes, i.e. unions of arrangement cells — the same tree TREE
//!   walks, but explored best-first instead of exhaustively;
//! - **bounding**: per node, every undecided indicator is classified
//!   against the node's weight box (Section IV-B interval argument);
//!   each ranked tuple's attainable rank interval yields an error lower
//!   bound; nodes that cannot beat the incumbent are pruned;
//! - **incumbents**: the Chebyshev center of each node's region is
//!   evaluated exactly — a feasible solution whose error prunes
//!   elsewhere, found long before any leaf is reached;
//! - **optimality proof**: with best-first order, the first pop whose
//!   bound reaches the incumbent proves optimality.
//!
//! The solver optimizes Definition 4 directly (true position error under
//! the tie tolerance `ε`); branching uses the `ε1`/`ε2` thresholds so
//! every decided indicator is numerically trustworthy, exactly like the
//! paper's MILP.

use crate::formulation::{self, PairH, ReducedSystem};
use crate::{OptProblem, SymGdConfig};
use rankhow_lp::{chebyshev_center, Op, Problem as Lp, Sense, SolveError, Status, VarId};
use rankhow_ranking::ErrorMeasure;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Node exploration order (ablation: `BestFirst` is the "modern solver"
/// behaviour; `DepthFirst` approximates naive backtracking).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SearchOrder {
    /// Pop the node with the smallest error lower bound first.
    #[default]
    BestFirst,
    /// LIFO plunging without global ordering.
    DepthFirst,
}

/// Solver configuration.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Abort after expanding this many nodes (0 = unlimited).
    pub node_limit: usize,
    /// Wall-clock limit.
    pub time_limit: Option<Duration>,
    /// Restrict the search to a weight box (SYM-GD cells).
    pub initial_box: Option<(Vec<f64>, Vec<f64>)>,
    /// Warm-start incumbent (e.g. an ordinal-regression seed).
    pub warm_start: Option<Vec<f64>>,
    /// Node exploration order.
    pub order: SearchOrder,
    /// Evaluate a Chebyshev-center incumbent at every node (disable for
    /// the ablation bench).
    pub incumbent_sampling: bool,
    /// Random simplex points evaluated at the root as heuristic
    /// incumbents (what commercial MILP solvers call a "start
    /// heuristic"). Deterministic; 0 disables.
    pub root_samples: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            node_limit: 500_000,
            time_limit: None,
            initial_box: None,
            warm_start: None,
            order: SearchOrder::BestFirst,
            incumbent_sampling: true,
            root_samples: 512,
        }
    }
}

/// Search statistics.
#[derive(Clone, Debug, Default)]
pub struct SolverStats {
    /// Nodes expanded.
    pub nodes: usize,
    /// LP solves (feasibility + tightening + centers).
    pub lp_solves: usize,
    /// Incumbent improvements.
    pub incumbents: usize,
    /// Live indicator pairs after root constant-folding.
    pub live_pairs: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// A solved OPT instance.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The synthesized weight vector (on the simplex, constraints
    /// satisfied).
    pub weights: Vec<f64>,
    /// Its objective value — Definition 3 position error for the default
    /// [`ErrorMeasure::Position`](rankhow_ranking::ErrorMeasure), the
    /// configured measure otherwise.
    pub error: u64,
    /// Whether optimality was proved (false when a node or time limit
    /// was hit).
    ///
    /// The proof covers the ε1/ε2-**certified** weight space — the same
    /// space the paper's Equation (2) MILP searches. Weight vectors with
    /// a pair score difference strictly inside the `(ε2, ε1)` safety gap
    /// are excluded from the proof, mirroring the false-negative caveat
    /// of Section V-A (choosing τ̂ too large "eliminates the range …
    /// from the solution space"). The *incumbent* itself may come from
    /// that band (sampling evaluates true Definition 2 error), so the
    /// reported solution can be strictly better than the certified
    /// optimum; see [`crate::verify::gap_band_pairs`].
    pub optimal: bool,
    /// Search statistics.
    pub stats: SolverStats,
}

/// Solver failures.
#[derive(Debug)]
pub enum SolverError {
    /// The weight predicate (plus box) admits no weight vector.
    Infeasible,
    /// The underlying LP solver failed numerically.
    Lp(SolveError),
    /// The solver does not encode position-window constraints (only the
    /// specialized [`RankHow`] branch-and-bound does).
    PositionsUnsupported,
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::Infeasible => write!(f, "weight constraints are infeasible"),
            SolverError::Lp(e) => write!(f, "lp failure: {e}"),
            SolverError::PositionsUnsupported => {
                write!(f, "position constraints are not supported by this solver")
            }
        }
    }
}

impl std::error::Error for SolverError {}

impl From<SolveError> for SolverError {
    fn from(e: SolveError) -> Self {
        SolverError::Lp(e)
    }
}

/// The RankHow exact solver.
#[derive(Clone, Debug, Default)]
pub struct RankHow {
    config: SolverConfig,
}

impl RankHow {
    /// Solver with default configuration.
    pub fn new() -> Self {
        RankHow::default()
    }

    /// Solver with explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        RankHow { config }
    }

    /// Configuration used by [`crate::SymGd`] for cell-restricted solves.
    pub(crate) fn for_cell(lo: Vec<f64>, hi: Vec<f64>, sym: &SymGdConfig) -> Self {
        RankHow {
            config: SolverConfig {
                initial_box: Some((lo, hi)),
                node_limit: sym.cell_node_limit,
                time_limit: sym.cell_time_limit,
                ..SolverConfig::default()
            },
        }
    }

    /// Solve OPT exactly (or to the configured limits).
    pub fn solve(&self, problem: &OptProblem) -> Result<Solution, SolverError> {
        let start = Instant::now();
        let m = problem.m();
        let (box_lo, box_hi) = match &self.config.initial_box {
            Some((lo, hi)) => (lo.clone(), hi.clone()),
            None => (vec![0.0; m], vec![1.0; m]),
        };

        // Root constant-folding: stream over all k·(n−1) pairs once.
        let sys = formulation::reduce_against_box(problem, &box_lo, &box_hi);
        let mut stats = SolverStats {
            live_pairs: sys.pairs.len(),
            ..SolverStats::default()
        };

        // Allowed rank windows per slot (Example 1 position constraints).
        let slot_bounds: Vec<Option<(u32, u32)>> = sys
            .top
            .iter()
            .map(|&t| problem.positions.interval(t))
            .collect();
        let has_position_constraints = slot_bounds.iter().any(|b| b.is_some());

        // Root region feasibility + first incumbent. A numerically
        // stuck Chebyshev LP falls back to a plain feasibility solve.
        let root_region = self.region(problem, &sys, &box_lo, &box_hi, &[]);
        stats.lp_solves += 1;
        let center = match chebyshev_center(&root_region) {
            Ok(Some(c)) => c,
            Ok(None) => return Err(SolverError::Infeasible),
            Err(_) => {
                stats.lp_solves += 1;
                let sol = root_region.solve_feasibility()?;
                if sol.status != Status::Optimal {
                    return Err(SolverError::Infeasible);
                }
                sol.x
            }
        };
        let mut best_w = center.clone();
        let mut best_err = u64::MAX;
        // A candidate becomes the incumbent only if it satisfies the
        // position windows.
        let try_incumbent =
            |w: &[f64], best_w: &mut Vec<f64>, best_err: &mut u64, stats: &mut SolverStats| {
                let ranks = ranks_in_system(&sys, w, problem.tol.eps);
                if has_position_constraints {
                    let ok = slot_bounds.iter().zip(&ranks).all(|(b, &r)| match b {
                        Some((lo, hi)) => *lo <= r && r <= *hi,
                        None => true,
                    });
                    if !ok {
                        return false;
                    }
                }
                let err = objective_of_ranks(&sys, &ranks, problem.objective);
                if err < *best_err {
                    *best_err = err;
                    *best_w = w.to_vec();
                    stats.incumbents += 1;
                    true
                } else {
                    false
                }
            };
        try_incumbent(&center, &mut best_w, &mut best_err, &mut stats);

        if let Some(warm) = &self.config.warm_start {
            if warm.len() == m
                && problem.constraints.satisfied_by(warm)
                && in_box(warm, &box_lo, &box_hi)
            {
                try_incumbent(warm, &mut best_w, &mut best_err, &mut stats);
            }
        }

        // Start heuristic: deterministic random simplex points inside
        // the box; good incumbents found here prune the tree everywhere.
        if self.config.root_samples > 0 && best_err > 0 {
            let mut state = 0x853c49e6748fea9bu64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            for _ in 0..self.config.root_samples {
                // Dirichlet(1,…,1) point, projected into the box.
                let mut w: Vec<f64> = (0..m).map(|_| -(next().max(1e-12)).ln()).collect();
                let total: f64 = w.iter().sum();
                for (j, x) in w.iter_mut().enumerate() {
                    *x = (*x / total).clamp(box_lo[j], box_hi[j]);
                }
                let resum: f64 = w.iter().sum();
                if resum <= 0.0 {
                    continue;
                }
                // Re-normalize; box clipping can push the sum off 1.
                let ok_after: bool = {
                    w.iter_mut().for_each(|x| *x /= resum);
                    in_box(&w, &box_lo, &box_hi)
                };
                if ok_after && problem.constraints.satisfied_by(&w) {
                    try_incumbent(&w, &mut best_w, &mut best_err, &mut stats);
                    if best_err == 0 {
                        break;
                    }
                }
            }
        }

        // Search.
        let mut heap: BinaryHeap<HeapNode> = BinaryHeap::new();
        let mut stack: Vec<Node> = Vec::new();
        let root = Node {
            decisions: Vec::new(),
            bound: interval_bound(&sys, &sys.fixed_beats, &sys.undecided, problem.objective),
        };
        let mut proved = false;
        if best_err == 0 || root.bound >= best_err {
            proved = true;
        } else {
            match self.config.order {
                SearchOrder::BestFirst => heap.push(HeapNode(root)),
                SearchOrder::DepthFirst => stack.push(root),
            }
        }

        'outer: loop {
            let node = match self.config.order {
                SearchOrder::BestFirst => match heap.pop() {
                    Some(HeapNode(n)) => n,
                    None => {
                        proved = true;
                        break;
                    }
                },
                SearchOrder::DepthFirst => match stack.pop() {
                    Some(n) => n,
                    None => {
                        proved = true;
                        break;
                    }
                },
            };
            if node.bound >= best_err {
                if self.config.order == SearchOrder::BestFirst {
                    // Best-first: every remaining node is at least as bad.
                    proved = true;
                    break;
                }
                continue;
            }
            if self.config.node_limit > 0 && stats.nodes >= self.config.node_limit {
                break;
            }
            if let Some(tl) = self.config.time_limit {
                if start.elapsed() >= tl {
                    break;
                }
            }
            stats.nodes += 1;

            // Tighten the node's weight box via per-coordinate LPs.
            let region = self.region(problem, &sys, &box_lo, &box_hi, &node.decisions);
            let Some((nlo, nhi)) = self.tighten_box(&region, m, &mut stats)? else {
                continue; // region infeasible
            };

            // Classify undecided pairs against the tightened box.
            let decided: Vec<Option<bool>> = {
                let mut d = vec![None; sys.pairs.len()];
                for &(idx, side) in &node.decisions {
                    d[idx as usize] = Some(side);
                }
                d
            };
            let mut beats = sys.fixed_beats.clone();
            let mut open = vec![0u32; sys.top.len()];
            let mut branch_candidate: Option<(usize, f64)> = None;
            for (idx, pair) in sys.pairs.iter().enumerate() {
                match decided[idx] {
                    Some(true) => beats[pair.slot] += 1,
                    Some(false) => {}
                    None => {
                        let lo_v = formulation::box_simplex_min(&pair.diff, &nlo, &nhi);
                        let hi_v = formulation::box_simplex_max(&pair.diff, &nlo, &nhi);
                        let (Some(l), Some(h)) = (lo_v, hi_v) else {
                            continue;
                        };
                        if l > problem.tol.eps {
                            beats[pair.slot] += 1;
                        } else if h <= problem.tol.eps {
                            // never beats
                        } else {
                            open[pair.slot] += 1;
                            // Most-ambiguous branching: largest two-sided
                            // margin around the tie threshold.
                            let straddle =
                                (h - problem.tol.eps).min(problem.tol.eps - l + (h - l) * 0.0);
                            let score = straddle.min(h - l);
                            if branch_candidate.map_or(true, |(_, s)| score > s) {
                                branch_candidate = Some((idx, score));
                            }
                        }
                    }
                }
            }

            // Position windows: prune when a slot's attainable rank
            // interval cannot meet its allowed window (interval computed
            // over a superset of the region — sound).
            if has_position_constraints {
                let impossible = slot_bounds.iter().enumerate().any(|(slot, b)| {
                    b.is_some_and(|(lo, hi)| {
                        let min_rank = beats[slot] + 1;
                        let max_rank = min_rank + open[slot];
                        max_rank < lo || min_rank > hi
                    })
                });
                if impossible {
                    continue;
                }
            }

            // Node bound from rank intervals.
            let bound = interval_bound(&sys, &beats, &open, problem.objective);
            if bound >= best_err {
                continue;
            }

            // Incumbent: the region's Chebyshev center (skipped on a
            // numerically stuck LP — purely a heuristic).
            if self.config.incumbent_sampling {
                stats.lp_solves += 1;
                if let Ok(Some(center)) = chebyshev_center(&region) {
                    if try_incumbent(&center, &mut best_w, &mut best_err, &mut stats) {
                        if best_err == 0 {
                            proved = true;
                            break 'outer;
                        }
                        if bound >= best_err {
                            continue;
                        }
                    }
                }
            }

            let Some((branch_idx, _)) = branch_candidate else {
                // Leaf: every pair decided or constant — bound is exact,
                // and the center above already recorded it.
                continue;
            };

            // Expand children, checking feasibility eagerly.
            for side in [true, false] {
                let mut decisions = node.decisions.clone();
                decisions.push((branch_idx as u32, side));
                let child_region = self.region(problem, &sys, &box_lo, &box_hi, &decisions);
                stats.lp_solves += 1;
                // On an LP failure, keep the child: pruning is only an
                // optimization and bounds remain sound.
                let keep = match child_region.solve_feasibility() {
                    Ok(sol) => sol.status == Status::Optimal,
                    Err(_) => true,
                };
                if keep {
                    let child = Node { decisions, bound };
                    match self.config.order {
                        SearchOrder::BestFirst => heap.push(HeapNode(child)),
                        SearchOrder::DepthFirst => stack.push(child),
                    }
                }
            }
        }

        stats.elapsed = start.elapsed();
        if best_err == u64::MAX {
            // Only possible under position constraints: no sampled point
            // satisfied the windows (and, if `proved`, none exists).
            return Err(SolverError::Infeasible);
        }
        Ok(Solution {
            weights: best_w,
            error: best_err,
            optimal: proved,
            stats,
        })
    }

    /// Build the node's weight-space LP region.
    fn region(
        &self,
        problem: &OptProblem,
        sys: &ReducedSystem,
        box_lo: &[f64],
        box_hi: &[f64],
        decisions: &[(u32, bool)],
    ) -> Lp {
        let m = problem.m();
        let mut lp = Lp::new(Sense::Minimize);
        let w: Vec<VarId> = (0..m)
            .map(|j| lp.add_var(&format!("w{j}"), box_lo[j], box_hi[j], 0.0))
            .collect();
        let simplex: Vec<(VarId, f64)> = w.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&simplex, Op::Eq, 1.0);
        problem.constraints.apply_to(&mut lp, &w);
        for &(idx, side) in decisions {
            let pair: &PairH = &sys.pairs[idx as usize];
            let terms: Vec<(VarId, f64)> = (0..m).map(|j| (w[j], pair.diff[j])).collect();
            if side {
                lp.add_constraint(&terms, Op::Ge, problem.tol.eps1);
            } else {
                lp.add_constraint(&terms, Op::Le, problem.tol.eps2);
            }
        }
        lp
    }

    /// Per-coordinate min/max over the region (2m small LPs). Returns
    /// `None` when the region is empty.
    fn tighten_box(
        &self,
        region: &Lp,
        m: usize,
        stats: &mut SolverStats,
    ) -> Result<Option<(Vec<f64>, Vec<f64>)>, SolverError> {
        // Safety margin so LP round-off cannot make the box *tighter*
        // than the true region (classification soundness depends on
        // box ⊇ region).
        const MARGIN: f64 = 1e-8;
        let mut lo = vec![0.0; m];
        let mut hi = vec![1.0; m];
        for j in 0..m {
            let (static_lo, static_hi) = region.bounds(j);
            let mut min_p = region.clone();
            for v in 0..m {
                min_p.set_objective(v, if v == j { 1.0 } else { 0.0 });
            }
            min_p.set_sense(Sense::Minimize);
            stats.lp_solves += 1;
            lo[j] = match min_p.solve() {
                Ok(s) if s.status == Status::Optimal => (s.objective - MARGIN).max(static_lo),
                Ok(s) if s.status == Status::Infeasible => return Ok(None),
                // Unbounded impossible (w ∈ [0,1]); LP failure → fallback.
                _ => static_lo,
            };
            let mut max_p = region.clone();
            for v in 0..m {
                max_p.set_objective(v, if v == j { 1.0 } else { 0.0 });
            }
            max_p.set_sense(Sense::Maximize);
            stats.lp_solves += 1;
            hi[j] = match max_p.solve() {
                Ok(s) if s.status == Status::Optimal => (s.objective + MARGIN).min(static_hi),
                Ok(s) if s.status == Status::Infeasible => return Ok(None),
                _ => static_hi,
            };
            // Numerical guard.
            if lo[j] > hi[j] {
                let mid = 0.5 * (lo[j] + hi[j]);
                lo[j] = mid;
                hi[j] = mid;
            }
        }
        Ok(Some((lo, hi)))
    }
}

/// Realized competition ranks per slot for `w`, using the reduced
/// system: constant-folded pairs are already in `fixed_beats`, so only
/// live pairs need a dot product.
pub(crate) fn ranks_in_system(sys: &ReducedSystem, w: &[f64], eps: f64) -> Vec<u32> {
    let mut beats: Vec<u32> = sys.fixed_beats.clone();
    for pair in &sys.pairs {
        let dot: f64 = pair.diff.iter().zip(w).map(|(d, wi)| d * wi).sum();
        if dot > eps {
            beats[pair.slot] += 1;
        }
    }
    beats.iter_mut().for_each(|b| *b += 1);
    beats
}

/// Position error of realized ranks against the targets.
pub(crate) fn error_of_ranks(sys: &ReducedSystem, ranks: &[u32]) -> u64 {
    sys.target
        .iter()
        .zip(ranks)
        .map(|(&pi, &r)| (pi as i64 - r as i64).unsigned_abs())
        .sum()
}

/// Objective value of realized slot ranks under any supported measure.
/// Agrees with `rankhow_ranking::error_by_measure` on the full rank
/// vector by construction (the measures only read ranked tuples).
pub(crate) fn objective_of_ranks(sys: &ReducedSystem, ranks: &[u32], measure: ErrorMeasure) -> u64 {
    match measure {
        ErrorMeasure::Position => error_of_ranks(sys, ranks),
        ErrorMeasure::TopWeighted => {
            let k = sys.top.len() as u64;
            sys.target
                .iter()
                .zip(ranks)
                .map(|(&pi, &r)| (k - pi as u64 + 1) * (pi as i64 - r as i64).unsigned_abs())
                .sum()
        }
        ErrorMeasure::KendallTau => {
            let mut inversions = 0u64;
            for a in 0..sys.target.len() {
                for b in a + 1..sys.target.len() {
                    let (pa, pb) = (sys.target[a], sys.target[b]);
                    if pa == pb {
                        continue; // given ties impose no order
                    }
                    let (hi, lo) = if pa < pb { (a, b) } else { (b, a) };
                    if ranks[hi] > ranks[lo] {
                        inversions += 1;
                    }
                }
            }
            inversions
        }
    }
}

/// Sound error lower bound from per-slot rank intervals
/// `[beats+1, beats+1+open]`, for any supported objective.
///
/// - position / top-weighted: distance of `π(r)` to the interval,
///   (weighted) summed per slot;
/// - Kendall tau: a strictly-ordered slot pair is *certainly* inverted
///   when the higher-ranked slot's minimum rank exceeds the lower slot's
///   maximum rank — only such pairs count.
fn interval_bound(sys: &ReducedSystem, beats: &[u32], open: &[u32], measure: ErrorMeasure) -> u64 {
    match measure {
        ErrorMeasure::Position => rank_interval_bound(sys, beats, open),
        ErrorMeasure::TopWeighted => {
            let k = sys.top.len() as u64;
            sys.target
                .iter()
                .enumerate()
                .map(|(slot, &pi)| {
                    let min_rank = beats[slot] as i64 + 1;
                    let max_rank = min_rank + open[slot] as i64;
                    let pi_i = pi as i64;
                    let gap = if pi_i < min_rank {
                        (min_rank - pi_i) as u64
                    } else if pi_i > max_rank {
                        (pi_i - max_rank) as u64
                    } else {
                        0
                    };
                    (k - pi as u64 + 1) * gap
                })
                .sum()
        }
        ErrorMeasure::KendallTau => {
            let mut certain = 0u64;
            for a in 0..sys.target.len() {
                for b in a + 1..sys.target.len() {
                    let (pa, pb) = (sys.target[a], sys.target[b]);
                    if pa == pb {
                        continue;
                    }
                    let (hi, lo) = if pa < pb { (a, b) } else { (b, a) };
                    let min_hi = beats[hi] as u64 + 1;
                    let max_lo = beats[lo] as u64 + 1 + open[lo] as u64;
                    if min_hi > max_lo {
                        certain += 1;
                    }
                }
            }
            certain
        }
    }
}

/// Exact position error of `w` using the reduced system. Agrees with
/// `OptProblem::evaluate` by construction.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn eval_in_system(sys: &ReducedSystem, w: &[f64], eps: f64) -> u64 {
    let ranks = ranks_in_system(sys, w, eps);
    error_of_ranks(sys, &ranks)
}

fn rank_interval_bound(sys: &ReducedSystem, beats: &[u32], open: &[u32]) -> u64 {
    sys.target
        .iter()
        .enumerate()
        .map(|(slot, &pi)| {
            let min_rank = beats[slot] as i64 + 1;
            let max_rank = min_rank + open[slot] as i64;
            let pi = pi as i64;
            if pi < min_rank {
                (min_rank - pi) as u64
            } else if pi > max_rank {
                (pi - max_rank) as u64
            } else {
                0
            }
        })
        .sum()
}

fn in_box(w: &[f64], lo: &[f64], hi: &[f64]) -> bool {
    w.iter()
        .zip(lo.iter().zip(hi))
        .all(|(x, (l, h))| *x >= l - 1e-9 && *x <= h + 1e-9)
}

struct Node {
    decisions: Vec<(u32, bool)>,
    bound: u64,
}

struct HeapNode(Node);

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound && self.0.decisions.len() == other.0.decisions.len()
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on bound; deeper nodes first among equals (plunge).
        other
            .0
            .bound
            .cmp(&self.0.bound)
            .then_with(|| self.0.decisions.len().cmp(&other.0.decisions.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightConstraints;
    use rankhow_data::Dataset;
    use rankhow_ranking::GivenRanking;

    fn problem_from(rows: Vec<Vec<f64>>, positions: Vec<Option<u32>>) -> OptProblem {
        let m = rows[0].len();
        let names = (0..m).map(|i| format!("A{i}")).collect();
        let data = Dataset::from_rows(names, rows).unwrap();
        let given = GivenRanking::from_positions(positions).unwrap();
        OptProblem::new(data, given).unwrap()
    }

    #[test]
    fn example4_solved_to_zero() {
        let p = problem_from(
            vec![
                vec![3.0, 2.0, 8.0],
                vec![4.0, 1.0, 15.0],
                vec![1.0, 1.0, 14.0],
            ],
            vec![Some(1), Some(2), None],
        );
        let sol = RankHow::new().solve(&p).unwrap();
        assert_eq!(sol.error, 0);
        assert!(sol.optimal);
        assert_eq!(p.evaluate(&sol.weights), 0);
        let sum: f64 = sol.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn example3_finds_perfect_function_where_regression_fails() {
        // The 5-tuple dataset of Example 3: regression errs by 4,
        // RankHow must reach 0.
        let p = problem_from(
            vec![
                vec![1.0, 10000.0],
                vec![2.0, 1000.0],
                vec![5.0, 1.0],
                vec![4.0, 10.0],
                vec![3.0, 100.0],
            ],
            vec![Some(1), Some(2), Some(3), Some(4), Some(5)],
        );
        let sol = RankHow::new().solve(&p).unwrap();
        assert_eq!(sol.error, 0, "weights {:?}", sol.weights);
        assert!(sol.optimal);
    }

    #[test]
    fn impossible_instance_gets_optimal_nonzero_error() {
        // Two tuples with identical attributes but distinct required
        // positions: no function can split them (they always tie), so
        // the optimum is error 1 (both rank 1: |1−1| + |2−1|).
        let p = problem_from(
            vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![0.0, 0.0]],
            vec![Some(1), Some(2), None],
        );
        let sol = RankHow::new().solve(&p).unwrap();
        assert_eq!(sol.error, 1);
        assert!(sol.optimal);
    }

    #[test]
    fn reversal_requires_error() {
        // Ranking is the reverse of every attribute's order: tuple 0
        // (all-smallest) must be first. Any simplex weight ranks tuple 0
        // last among the three. Optimal error is forced.
        let p = problem_from(
            vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]],
            vec![Some(1), Some(2), Some(3)],
        );
        let sol = RankHow::new().solve(&p).unwrap();
        // Scores are fully ordered: ranks become [3,2,1], error =
        // |1−3| + |2−2| + |3−1| = 4. (Ties could do better only if
        // allowed — with ε = 0 and distinct rows, ties need exact
        // equality which weights can achieve: w s.t. both coords equal
        // ... all rows are multiples: any w gives scores 0 < s1 < s2.)
        assert_eq!(sol.error, 4);
        assert!(sol.optimal);
    }

    #[test]
    fn weight_constraints_respected() {
        let p = problem_from(
            vec![
                vec![3.0, 2.0, 8.0],
                vec![4.0, 1.0, 15.0],
                vec![1.0, 1.0, 14.0],
            ],
            vec![Some(1), Some(2), None],
        );
        // Example-1 style: force substantial weight on attribute 0.
        let p = p
            .with_constraints(WeightConstraints::none().min_weight(0, 0.3))
            .unwrap();
        let sol = RankHow::new().solve(&p).unwrap();
        assert!(sol.weights[0] >= 0.3 - 1e-6);
        assert!(sol.optimal);
        assert_eq!(p.evaluate(&sol.weights), sol.error);
    }

    #[test]
    fn infeasible_constraints_detected() {
        let p = problem_from(vec![vec![1.0, 0.0], vec![0.0, 1.0]], vec![Some(1), Some(2)]);
        let p = p
            .with_constraints(
                WeightConstraints::none()
                    .min_weight(0, 0.8)
                    .max_weight(0, 0.1),
            )
            .unwrap();
        assert!(matches!(
            RankHow::new().solve(&p),
            Err(SolverError::Infeasible)
        ));
    }

    #[test]
    fn warm_start_adopted_when_feasible() {
        let p = problem_from(
            vec![
                vec![3.0, 2.0, 8.0],
                vec![4.0, 1.0, 15.0],
                vec![1.0, 1.0, 14.0],
            ],
            vec![Some(1), Some(2), None],
        );
        // Example 5's star: small w1, large w2, tiny w3.
        let cfg = SolverConfig {
            warm_start: Some(vec![0.1, 0.85, 0.05]),
            ..SolverConfig::default()
        };
        let sol = RankHow::with_config(cfg).solve(&p).unwrap();
        assert_eq!(sol.error, 0);
    }

    #[test]
    fn depth_first_reaches_same_optimum() {
        let p = problem_from(
            vec![
                vec![5.0, 1.0],
                vec![4.0, 2.0],
                vec![1.0, 5.0],
                vec![2.0, 4.0],
                vec![3.0, 3.0],
            ],
            vec![Some(1), Some(2), Some(3), None, None],
        );
        let best = RankHow::new().solve(&p).unwrap();
        let dfs = RankHow::with_config(SolverConfig {
            order: SearchOrder::DepthFirst,
            ..SolverConfig::default()
        })
        .solve(&p)
        .unwrap();
        assert_eq!(best.error, dfs.error);
        assert!(best.optimal && dfs.optimal);
    }

    #[test]
    fn box_restriction_limits_search() {
        let p = problem_from(
            vec![
                vec![3.0, 2.0, 8.0],
                vec![4.0, 1.0, 15.0],
                vec![1.0, 1.0, 14.0],
            ],
            vec![Some(1), Some(2), None],
        );
        // A box around the known-good region: still solves to 0.
        let cfg = SolverConfig {
            initial_box: Some((vec![0.0, 0.6, 0.0], vec![0.3, 1.0, 0.2])),
            ..SolverConfig::default()
        };
        let sol = RankHow::with_config(cfg).solve(&p).unwrap();
        assert_eq!(sol.error, 0);
        assert!(in_box(&sol.weights, &[0.0, 0.6, 0.0], &[0.3, 1.0, 0.2]));
        // A box far from it: error must be worse.
        let cfg_bad = SolverConfig {
            initial_box: Some((vec![0.8, 0.0, 0.0], vec![1.0, 0.1, 0.1])),
            ..SolverConfig::default()
        };
        let sol_bad = RankHow::with_config(cfg_bad).solve(&p).unwrap();
        assert!(sol_bad.error > 0);
    }

    #[test]
    fn eval_in_system_matches_problem_evaluate() {
        let p = problem_from(
            vec![
                vec![2.0, 7.0, 1.0],
                vec![6.0, 2.0, 3.0],
                vec![4.0, 4.0, 4.0],
                vec![1.0, 1.0, 9.0],
            ],
            vec![Some(1), Some(2), Some(3), None],
        );
        let sys = formulation::reduce_global(&p);
        for w in [
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.3, 0.3, 0.4],
            [0.5, 0.25, 0.25],
        ] {
            assert_eq!(
                eval_in_system(&sys, &w, p.tol.eps),
                p.evaluate(&w),
                "w = {w:?}"
            );
        }
    }

    #[test]
    fn position_pin_enforced() {
        // Unconstrained optimum ranks tuple 0 first (achievable with
        // w0 > w1); pinning tuple 1 to position 1 forces a different
        // region.
        let p = problem_from(
            vec![
                vec![5.0, 1.0],
                vec![1.0, 5.0],
                vec![3.0, 3.0],
                vec![0.5, 0.5],
            ],
            vec![Some(1), Some(3), Some(2), None],
        );
        let free = RankHow::new().solve(&p).unwrap();
        assert_eq!(free.error, 0);
        let pinned = p
            .clone()
            .with_positions(crate::PositionConstraints::none().pin(1, 1))
            .unwrap();
        let sol = RankHow::new().solve(&pinned).unwrap();
        // Tuple 1 realized rank must be 1 even at an error cost.
        let scores = rankhow_ranking::scores_f64(pinned.data.rows(), &sol.weights);
        assert_eq!(rankhow_ranking::rank_of_in(&scores, 1, pinned.tol.eps), 1);
        assert!(sol.error >= free.error);
    }

    #[test]
    fn position_window_infeasible_detected() {
        // Tuple 1 dominates tuple 0 everywhere, so tuple 0 can never be
        // rank 1: pinning it must come back infeasible.
        let p = problem_from(
            vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![0.0, 0.0]],
            vec![Some(1), Some(2), None],
        );
        let pinned = p
            .with_positions(crate::PositionConstraints::none().pin(0, 1))
            .unwrap();
        assert!(matches!(
            RankHow::new().solve(&pinned),
            Err(SolverError::Infeasible)
        ));
    }

    #[test]
    fn position_displacement_band() {
        let p = problem_from(
            vec![
                vec![5.0, 1.0],
                vec![4.0, 2.0],
                vec![3.0, 3.0],
                vec![2.0, 4.0],
                vec![1.0, 5.0],
            ],
            vec![Some(5), Some(4), Some(3), Some(2), Some(1)],
        );
        // The given ranking reverses every attribute order — large error
        // unavoidable, but the band keeps each tuple within ±2.
        let banded = p
            .clone()
            .with_positions(crate::PositionConstraints::none().max_displacement(&p.given, 2))
            .unwrap();
        match RankHow::new().solve(&banded) {
            Ok(sol) => {
                let scores = rankhow_ranking::scores_f64(banded.data.rows(), &sol.weights);
                for &t in banded.given.top_k() {
                    let r = rankhow_ranking::rank_of_in(&scores, t, banded.tol.eps);
                    let pi = banded.given.position(t).unwrap();
                    assert!(
                        (pi as i64 - r as i64).unsigned_abs() <= 2,
                        "tuple {t}: rank {r} vs π {pi}"
                    );
                }
            }
            Err(SolverError::Infeasible) => {} // also a valid proof
            Err(e) => panic!("unexpected: {e}"),
        }
    }

    #[test]
    fn position_constraint_on_unranked_rejected() {
        let p = problem_from(
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![Some(1), Some(2), None],
        );
        assert!(p
            .with_positions(crate::PositionConstraints::none().pin(2, 1))
            .is_err());
    }

    #[test]
    fn stats_are_meaningful() {
        let p = problem_from(
            vec![
                vec![5.0, 1.0],
                vec![1.0, 5.0],
                vec![4.0, 2.0],
                vec![2.0, 4.0],
            ],
            vec![Some(1), Some(2), None, None],
        );
        let sol = RankHow::new().solve(&p).unwrap();
        assert!(sol.stats.lp_solves >= 1);
        assert!(sol.stats.incumbents >= 1);
    }
}
