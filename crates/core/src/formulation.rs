//! Equation (2): the MILP formulation of OPT, and the box-reduction
//! machinery that both the specialized solver and SYM-GD build on.
//!
//! Two central ideas from the paper live here:
//!
//! 1. **Indicator structure.** Every pair (other tuple `s`, ranked tuple
//!    `r`) contributes one binary indicator `δ_sr` whose value is decided
//!    by the sign of the linear form `Σ w_i (s.A_i − r.A_i)` against the
//!    thresholds `ε1`/`ε2`. The rank of `r` is `1 + Σ_s δ_sr`.
//!
//! 2. **Constant folding over a box** (Section IV and V-B). Over any box
//!    `[lo, hi] ⊆ [0,1]^m` of weight space (intersected with the simplex
//!    `Σw = 1`), the extreme values of each pair's linear form are exact
//!    fractional-knapsack optima computable in `O(m log m)`. Pairs whose
//!    range clears `ε` on one side are constants — the SYM-GD speedup and
//!    the Section V-B dominance pruning both fall out of this test (a
//!    dominated pair's range is strictly positive over the whole simplex).

use crate::{OptProblem, WeightConstraints};
use rankhow_lp::{Op, Sense, VarId};
use rankhow_milp::MilpProblem;

/// An undecided indicator pair: tuple `s` versus ranked tuple at `slot`.
/// Its difference vector lives in the system's flat
/// [`ReducedSystem::diff`] store (columnar-refactor: one contiguous
/// allocation instead of one `Vec` per pair).
#[derive(Clone, Copy, Debug)]
pub struct PairH {
    /// Index of the challenger tuple `s`.
    pub s: usize,
    /// Slot (into [`ReducedSystem::top`]) of the ranked tuple `r`.
    pub slot: usize,
}

/// OPT after constant-folding every indicator that a weight box decides.
#[derive(Clone, Debug)]
pub struct ReducedSystem {
    /// Ranked tuple ids, in slot order.
    pub top: Vec<usize>,
    /// Given position `π(r)` per slot.
    pub target: Vec<u32>,
    /// Per slot: challengers guaranteed to beat `r` anywhere in the box.
    pub fixed_beats: Vec<u32>,
    /// Per slot: number of undecided challengers.
    pub undecided: Vec<u32>,
    /// The undecided pairs (difference vectors in [`ReducedSystem::diff`]).
    pub pairs: Vec<PairH>,
    /// Flat difference storage: pair `i`'s `diff_j = s.A_j − r.A_j`
    /// occupies `diffs[i·m .. (i+1)·m]`. Contiguous so the node-loop dot
    /// products stream one allocation.
    diffs: Vec<f64>,
    /// Attribute count (row stride of `diffs`).
    m: usize,
    /// The box the reduction was performed against.
    pub box_lo: Vec<f64>,
    /// Upper corner of the box.
    pub box_hi: Vec<f64>,
}

impl ReducedSystem {
    /// Difference vector of pair `idx` (`s.A − r.A`, length `m`).
    #[inline]
    pub fn diff(&self, idx: usize) -> &[f64] {
        &self.diffs[idx * self.m..(idx + 1) * self.m]
    }
}

/// Minimum of `c·w` over `{lo ≤ w ≤ hi, Σw = 1}` — fractional knapsack.
/// Returns `None` if the box misses the simplex.
pub fn box_simplex_min(c: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
    let m = c.len();
    let base: f64 = lo.iter().sum();
    let cap: f64 = hi.iter().sum();
    if base > 1.0 + 1e-12 || cap < 1.0 - 1e-12 {
        return None;
    }
    // Start at the lower corner, spend the remaining mass on the
    // cheapest coordinates.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| c[a].total_cmp(&c[b]));
    let mut remaining = 1.0 - base;
    let mut value: f64 = c.iter().zip(lo).map(|(ci, li)| ci * li).sum();
    for &j in &order {
        if remaining <= 0.0 {
            break;
        }
        let room = (hi[j] - lo[j]).min(remaining);
        value += c[j] * room;
        remaining -= room;
    }
    Some(value)
}

/// Maximum of `c·w` over the same region.
pub fn box_simplex_max(c: &[f64], lo: &[f64], hi: &[f64]) -> Option<f64> {
    let neg: Vec<f64> = c.iter().map(|x| -x).collect();
    box_simplex_min(&neg, lo, hi).map(|v| -v)
}

/// Classification of one pair's linear form against a box.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PairClass {
    /// `diff·w > ε` everywhere: the challenger always beats.
    AlwaysBeats,
    /// `diff·w ≤ ε` everywhere: never beats (tied or behind).
    NeverBeats,
    /// The box straddles the threshold: a live indicator.
    Undecided,
}

/// Classify a difference vector against a box under tie tolerance `eps`.
pub fn classify(diff: &[f64], lo: &[f64], hi: &[f64], eps: f64) -> PairClass {
    let lo_val = box_simplex_min(diff, lo, hi);
    let hi_val = box_simplex_max(diff, lo, hi);
    match (lo_val, hi_val) {
        (Some(l), Some(h)) => {
            if l > eps {
                PairClass::AlwaysBeats
            } else if h <= eps {
                PairClass::NeverBeats
            } else {
                PairClass::Undecided
            }
        }
        // Empty box: caller should have checked; treat as undecided.
        _ => PairClass::Undecided,
    }
}

/// Build the reduced system for `problem` against a weight box.
///
/// Streams over all `k·(n−1)` pairs without materializing the decided
/// ones, so it is safe at the paper's `n = 10⁶` scale: memory is
/// `O(undecided)`.
pub fn reduce_against_box(problem: &OptProblem, lo: &[f64], hi: &[f64]) -> ReducedSystem {
    let features = problem.data.features();
    let given = &problem.given;
    let eps = problem.tol.eps;
    let top: Vec<usize> = given.top_k().to_vec();
    // Invariant carried by `GivenRanking`: `top_k()` enumerates exactly
    // the tuples whose `position()` is `Some` (checked at construction),
    // so this lookup cannot fail for a well-formed ranking. (Audit note:
    // this is the only non-test unwrap/expect in this module; every
    // other fallible path returns through `Option`/`Result`.)
    let target: Vec<u32> = top
        .iter()
        .map(|&r| {
            given
                .position(r)
                .expect("GivenRanking invariant: every top-k tuple has a position")
        })
        .collect();
    let mut fixed_beats = vec![0u32; top.len()];
    let mut undecided = vec![0u32; top.len()];
    let mut pairs = Vec::new();
    let mut diffs = Vec::new();
    let n = problem.n();
    let m = problem.m();
    // Challenger rows are processed in blocks: the batched kernel fills a
    // block of difference vectors one *column* at a time (each source
    // column read contiguously), then each diff is classified.
    const BLOCK: usize = 128;
    let mut block_ids: Vec<usize> = Vec::with_capacity(BLOCK);
    let mut block_buf = vec![0.0f64; BLOCK * m];
    for (slot, &r) in top.iter().enumerate() {
        let mut s = 0usize;
        while s < n {
            block_ids.clear();
            while s < n && block_ids.len() < BLOCK {
                if s != r {
                    block_ids.push(s);
                }
                s += 1;
            }
            features.block_diffs_into(&block_ids, r, &mut block_buf);
            for (b, &sid) in block_ids.iter().enumerate() {
                let diff = &block_buf[b * m..(b + 1) * m];
                match classify(diff, lo, hi, eps) {
                    PairClass::AlwaysBeats => fixed_beats[slot] += 1,
                    PairClass::NeverBeats => {}
                    PairClass::Undecided => {
                        undecided[slot] += 1;
                        pairs.push(PairH { s: sid, slot });
                        diffs.extend_from_slice(diff);
                    }
                }
            }
        }
    }
    ReducedSystem {
        top,
        target,
        fixed_beats,
        undecided,
        pairs,
        diffs,
        m,
        box_lo: lo.to_vec(),
        box_hi: hi.to_vec(),
    }
}

/// Reduce against the whole simplex (`[0,1]^m` box) — the global solve.
pub fn reduce_global(problem: &OptProblem) -> ReducedSystem {
    let m = problem.m();
    reduce_against_box(problem, &vec![0.0; m], &vec![1.0; m])
}

impl ReducedSystem {
    /// Lower bound on the position error achievable anywhere in the box:
    /// each slot's rank is confined to
    /// `[fixed+1, fixed+undecided+1]`; error is at least the distance of
    /// `π(r)` to that interval (Section IV-B).
    pub fn error_lower_bound(&self) -> u64 {
        self.top
            .iter()
            .enumerate()
            .map(|(slot, _)| {
                let min_rank = self.fixed_beats[slot] as i64 + 1;
                let max_rank = min_rank + self.undecided[slot] as i64;
                let pi = self.target[slot] as i64;
                if pi < min_rank {
                    (min_rank - pi) as u64
                } else if pi > max_rank {
                    (pi - max_rank) as u64
                } else {
                    0
                }
            })
            .sum()
    }

    /// Upper bound on achievable error (everything uncertain goes wrong).
    pub fn error_upper_bound(&self) -> u64 {
        self.top
            .iter()
            .enumerate()
            .map(|(slot, _)| {
                let min_rank = self.fixed_beats[slot] as i64 + 1;
                let max_rank = min_rank + self.undecided[slot] as i64;
                let pi = self.target[slot] as i64;
                (pi - min_rank).abs().max((pi - max_rank).abs()) as u64
            })
            .sum()
    }
}

/// Variable layout of the generated MILP (for solution extraction).
#[derive(Clone, Debug)]
pub struct MilpLayout {
    /// Weight variables, one per attribute.
    pub w: Vec<VarId>,
    /// Indicator variables, parallel to [`ReducedSystem::pairs`].
    pub delta: Vec<VarId>,
    /// Error variables: one per ranked slot for the position measures,
    /// one per strictly-ordered slot pair (inversion binaries) for
    /// Kendall tau.
    pub err: Vec<VarId>,
}

/// Build the literal Equation (2) MILP over a reduced system:
///
/// ```text
/// min  Σ_r c_r·e_r
/// s.t. P(w),  Σw = 1,  w ≥ 0
///      δ_sr = 1 ⇒ diff·w ≥ ε1      (big-M encoded)
///      δ_sr = 0 ⇒ diff·w ≤ ε2
///      e_r ≥ ±(fixed_r + Σ_s δ_sr + 1 − π(r))
/// ```
///
/// The objective follows [`OptProblem::objective`]: `c_r = 1` for
/// position error (the paper's Equation (2)); `c_r = k − π(r) + 1` for
/// the top-weighted variant; and for Kendall tau the `e_r` block is
/// replaced by one binary `z_ab` per strictly-ordered ranked pair with
/// `rank_a − rank_b ≤ M·z_ab` (given `π(a) < π(b)`), minimizing `Σ z` —
/// the Section II "other error measures" generalization.
pub fn build_milp(problem: &OptProblem, system: &ReducedSystem) -> (MilpProblem, MilpLayout) {
    use rankhow_ranking::ErrorMeasure;

    let m = problem.m();
    let mut milp = MilpProblem::new(Sense::Minimize);
    let w: Vec<VarId> = (0..m)
        .map(|j| milp.add_var(&format!("w{j}"), 0.0, 1.0, 0.0))
        .collect();
    let simplex: Vec<(VarId, f64)> = w.iter().map(|&v| (v, 1.0)).collect();
    milp.add_constraint(&simplex, Op::Eq, 1.0);
    apply_weight_constraints(&mut milp, &problem.constraints, &w);

    let delta: Vec<VarId> = system
        .pairs
        .iter()
        .enumerate()
        .map(|(i, _)| milp.add_binary(&format!("d{i}"), 0.0))
        .collect();
    for (idx, &d) in delta.iter().enumerate() {
        let diff = system.diff(idx);
        let terms: Vec<(VarId, f64)> = (0..m).map(|j| (w[j], diff[j])).collect();
        // |diff·w| ≤ max_j |diff_j| over the simplex: a tight big-M.
        let reach = diff.iter().fold(0.0f64, |a, d| a.max(d.abs()));
        let big_m = reach + problem.tol.eps1.abs() + 1.0;
        milp.add_indicator_ge(d, &terms, problem.tol.eps1, big_m);
        milp.add_indicator_le(d, &terms, problem.tol.eps2, big_m);
    }

    let k = system.top.len();
    let mut err = Vec::new();
    match problem.objective {
        ErrorMeasure::Position | ErrorMeasure::TopWeighted => {
            for slot in 0..k {
                let cost = match problem.objective {
                    ErrorMeasure::TopWeighted => (k as u64 - system.target[slot] as u64 + 1) as f64,
                    _ => 1.0,
                };
                let e = milp.add_var(&format!("e{slot}"), 0.0, f64::INFINITY, cost);
                err.push(e);
                let base = system.fixed_beats[slot] as f64 + 1.0 - system.target[slot] as f64;
                let mut up: Vec<(VarId, f64)> = vec![(e, 1.0)];
                let mut down: Vec<(VarId, f64)> = vec![(e, 1.0)];
                for (pair, &d) in system.pairs.iter().zip(&delta) {
                    if pair.slot == slot {
                        up.push((d, -1.0));
                        down.push((d, 1.0));
                    }
                }
                // e ≥ (base + Σδ)  and  e ≥ −(base + Σδ)
                milp.add_constraint(&up, Op::Ge, base);
                milp.add_constraint(&down, Op::Ge, -base);
            }
        }
        ErrorMeasure::KendallTau => {
            // rank_slot = fixed_slot + Σ_s δ_s,slot + 1. For a strictly-
            // ordered pair (hi ranked above lo in π), an inversion means
            // rank_hi > rank_lo; force z = 1 exactly then via
            // rank_hi − rank_lo ≤ M·z (ranks are integral, so the strict
            // inequality is "≥ 1" and z = 0 enforces rank_hi ≤ rank_lo).
            let big_m = problem.n() as f64;
            for a in 0..k {
                for b in a + 1..k {
                    let (pa, pb) = (system.target[a], system.target[b]);
                    if pa == pb {
                        continue;
                    }
                    let (hi, lo) = if pa < pb { (a, b) } else { (b, a) };
                    let z = milp.add_binary(&format!("z{hi}_{lo}"), 1.0);
                    err.push(z);
                    // Σδ_·,hi − Σδ_·,lo − M·z ≤ fixed_lo − fixed_hi
                    let mut terms: Vec<(VarId, f64)> = vec![(z, -big_m)];
                    for (pair, &d) in system.pairs.iter().zip(&delta) {
                        if pair.slot == hi {
                            terms.push((d, 1.0));
                        } else if pair.slot == lo {
                            terms.push((d, -1.0));
                        }
                    }
                    let rhs = system.fixed_beats[lo] as f64 - system.fixed_beats[hi] as f64;
                    milp.add_constraint(&terms, Op::Le, rhs);
                }
            }
        }
    }

    (milp, MilpLayout { w, delta, err })
}

fn apply_weight_constraints(milp: &mut MilpProblem, wc: &WeightConstraints, w: &[VarId]) {
    for (coefs, rhs) in wc.rows() {
        let terms: Vec<(VarId, f64)> = coefs.iter().map(|&(i, c)| (w[i], c)).collect();
        milp.add_constraint(&terms, Op::Le, rhs);
    }
}

/// The indicator hyperplanes of an instance (for geometry examples and
/// Fig. 1/2 reproduction): `(s, r, diff)` per pair.
pub fn indicator_hyperplanes(problem: &OptProblem) -> Vec<(usize, usize, Vec<f64>)> {
    let features = problem.data.features();
    let mut out = Vec::new();
    let mut diff = vec![0.0; features.m()];
    for &r in problem.given.top_k() {
        for s in 0..features.n() {
            if s == r {
                continue;
            }
            features.row_diff_into(s, r, &mut diff);
            out.push((s, r, diff.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rankhow_data::Dataset;
    use rankhow_milp::MilpStatus;
    use rankhow_ranking::GivenRanking;

    fn example4_problem() -> OptProblem {
        // Paper Example 4: r=(3,2,8), s=(4,1,15), t=(1,1,14), π = [1,2,⊥].
        let data = Dataset::from_rows(
            vec!["A1".into(), "A2".into(), "A3".into()],
            vec![
                vec![3.0, 2.0, 8.0],
                vec![4.0, 1.0, 15.0],
                vec![1.0, 1.0, 14.0],
            ],
        )
        .unwrap();
        let given = GivenRanking::from_positions(vec![Some(1), Some(2), None]).unwrap();
        OptProblem::new(data, given).unwrap()
    }

    #[test]
    fn box_simplex_extremes_match_vertices() {
        // Over the full simplex the extremes of c·w are min/max of c.
        let c = [3.0, -1.0, 2.0];
        let lo = [0.0; 3];
        let hi = [1.0; 3];
        assert_eq!(box_simplex_min(&c, &lo, &hi), Some(-1.0));
        assert_eq!(box_simplex_max(&c, &lo, &hi), Some(3.0));
    }

    #[test]
    fn box_simplex_respects_box() {
        // w0 ∈ [0.5, 1.0] forces at least half the mass on coordinate 0.
        let c = [1.0, 0.0];
        let lo = [0.5, 0.0];
        let hi = [1.0, 1.0];
        assert_eq!(box_simplex_min(&c, &lo, &hi), Some(0.5));
        assert_eq!(box_simplex_max(&c, &lo, &hi), Some(1.0));
    }

    #[test]
    fn box_missing_simplex_is_none() {
        // Box sums can't reach 1.
        assert_eq!(box_simplex_min(&[1.0, 1.0], &[0.0, 0.0], &[0.3, 0.3]), None);
        // Box lower corner already exceeds 1.
        assert_eq!(box_simplex_min(&[1.0, 1.0], &[0.8, 0.8], &[1.0, 1.0]), None);
    }

    #[test]
    fn classification_three_ways() {
        let lo = [0.0; 2];
        let hi = [1.0; 2];
        assert_eq!(classify(&[1.0, 2.0], &lo, &hi, 0.0), PairClass::AlwaysBeats);
        assert_eq!(
            classify(&[-1.0, -0.5], &lo, &hi, 0.0),
            PairClass::NeverBeats
        );
        assert_eq!(classify(&[1.0, -1.0], &lo, &hi, 0.0), PairClass::Undecided);
        // Tolerance shifts the boundary.
        assert_eq!(classify(&[0.4, 0.5], &lo, &hi, 0.6), PairClass::NeverBeats);
    }

    #[test]
    fn global_reduction_subsumes_dominance() {
        let problem = example4_problem();
        let sys = reduce_global(&problem);
        // s=(4,1,15) vs t=(1,1,14): s dominates-or-ties t on every
        // attribute, so the pair (t beats s?) is never-beats and the
        // reverse is... A2 ties (1 vs 1), so min over simplex of
        // (s − t)·w = min(3, 0, 1) = 0, not > ε: stays undecided under
        // strict classification. The pairs that survive must include all
        // straddling ones.
        for idx in 0..sys.pairs.len() {
            let l = box_simplex_min(sys.diff(idx), &sys.box_lo, &sys.box_hi).unwrap();
            let h = box_simplex_max(sys.diff(idx), &sys.box_lo, &sys.box_hi).unwrap();
            assert!(l <= problem.tol.eps && h > problem.tol.eps);
        }
    }

    #[test]
    fn tight_box_folds_everything() {
        let problem = example4_problem();
        // A tiny box around w = (0.05, 0.9, 0.05), where all three
        // scores are well separated (2.35, 1.85, 1.65): every indicator
        // becomes a constant, so no pairs remain. (The Example 5 star
        // (0.1, 0.8, 0.1) would NOT fold: it scores r and s exactly
        // equal, so their hyperplane passes through any cell around it.)
        let center = [0.05, 0.9, 0.05];
        let lo: Vec<f64> = center.iter().map(|c| c - 1e-6).collect();
        let hi: Vec<f64> = center.iter().map(|c| c + 1e-6).collect();
        let sys = reduce_against_box(&problem, &lo, &hi);
        assert!(
            sys.pairs.is_empty(),
            "tiny cell must fold all indicators, kept {}",
            sys.pairs.len()
        );
        // And the bound is exact there: lower == upper.
        assert_eq!(sys.error_lower_bound(), sys.error_upper_bound());
    }

    #[test]
    fn bounds_bracket_true_error() {
        let problem = example4_problem();
        let sys = reduce_global(&problem);
        let lb = sys.error_lower_bound();
        let ub = sys.error_upper_bound();
        assert!(lb == 0, "a perfect function exists (Example 5)");
        for w in [[0.1, 0.8, 0.1], [0.4, 0.4, 0.2], [1.0, 0.0, 0.0]] {
            let e = problem.evaluate(&w);
            assert!(e >= lb && e <= ub, "error {e} outside [{lb}, {ub}]");
        }
    }

    #[test]
    fn milp_solves_example4_to_zero() {
        let problem = example4_problem();
        let sys = reduce_global(&problem);
        let (milp, layout) = build_milp(&problem, &sys);
        let sol = milp.solve().unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!(sol.objective.abs() < 1e-6, "objective {}", sol.objective);
        // Extract weights and verify with the Definition 2 evaluator.
        let w: Vec<f64> = layout.w.iter().map(|&v| sol.x[v]).collect();
        assert_eq!(problem.evaluate(&w), 0, "weights {w:?}");
    }

    #[test]
    fn milp_respects_weight_constraints() {
        let problem = example4_problem();
        // Force w0 ≥ 0.3 — a perfect function should still exist or the
        // solver degrade gracefully; either way w0 honors the bound.
        let constrained = problem
            .clone()
            .with_constraints(WeightConstraints::none().min_weight(0, 0.3))
            .unwrap();
        let sys = reduce_global(&constrained);
        let (milp, layout) = build_milp(&constrained, &sys);
        let sol = milp.solve().unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        let w: Vec<f64> = layout.w.iter().map(|&v| sol.x[v]).collect();
        assert!(w[0] >= 0.3 - 1e-6, "constraint honored: {w:?}");
    }

    #[test]
    fn hyperplane_enumeration_matches_example4() {
        let problem = example4_problem();
        let planes = indicator_hyperplanes(&problem);
        // k=2 ranked tuples × 2 others = 4 pairs.
        assert_eq!(planes.len(), 4);
        // δ_sr for r=tuple0, s=tuple1: diff = (1, −1, 7) — Example 4's
        // "w1 − w2 + 7w3 > 0".
        let d_sr = planes.iter().find(|(s, r, _)| *s == 1 && *r == 0).unwrap();
        assert_eq!(d_sr.2, vec![1.0, -1.0, 7.0]);
        // δ_tr: diff = (−2, −1, 6).
        let d_tr = planes.iter().find(|(s, r, _)| *s == 2 && *r == 0).unwrap();
        assert_eq!(d_tr.2, vec![-2.0, -1.0, 6.0]);
    }

    #[test]
    fn streaming_reduction_counts_consistent() {
        let problem = example4_problem();
        let sys = reduce_global(&problem);
        for slot in 0..sys.top.len() {
            let live = sys.pairs.iter().filter(|p| p.slot == slot).count() as u32;
            assert_eq!(live, sys.undecided[slot]);
            // fixed + undecided + dropped = n − 1
            assert!(sys.fixed_beats[slot] + sys.undecided[slot] <= (problem.n() - 1) as u32);
        }
    }
}
