//! The OPT problem definition (paper Definitions 1–4).

use rankhow_data::Dataset;
use rankhow_lp::{Op, Problem as LpProblem, VarId};
use rankhow_ranking::{ErrorMeasure, GivenRanking, Tolerances};
use std::fmt;

/// Errors constructing an [`OptProblem`].
#[derive(Debug)]
pub enum ProblemError {
    /// Dataset row count differs from ranking length.
    LengthMismatch {
        /// Rows in the dataset.
        rows: usize,
        /// Entries in the ranking.
        ranking: usize,
    },
    /// A constraint references an attribute index out of range.
    BadAttribute {
        /// The out-of-range attribute index.
        index: usize,
        /// Number of attributes in the dataset.
        m: usize,
    },
    /// A position constraint targets an unranked (`⊥`) tuple.
    UnrankedPositionConstraint {
        /// The unranked tuple the constraint targets.
        tuple: usize,
    },
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::LengthMismatch { rows, ranking } => {
                write!(f, "dataset has {rows} rows but ranking covers {ranking}")
            }
            ProblemError::BadAttribute { index, m } => {
                write!(
                    f,
                    "constraint references attribute {index}, dataset has {m}"
                )
            }
            ProblemError::UnrankedPositionConstraint { tuple } => {
                write!(f, "position constraint on unranked tuple {tuple}")
            }
        }
    }
}

impl std::error::Error for ProblemError {}

/// A conjunction of linear weight constraints `Σ α_i·w_i ≤ α₀`
/// (the predicate `P` of Definition 4). The implicit simplex constraints
/// `w ≥ 0`, `Σ w = 1` are always present and not stored here.
#[derive(Clone, Debug, Default)]
pub struct WeightConstraints {
    /// Rows `(sparse coefficients, rhs)` meaning `Σ coef·w ≤ rhs`.
    rows: Vec<(Vec<(usize, f64)>, f64)>,
}

impl WeightConstraints {
    /// No constraints beyond the simplex.
    pub fn none() -> Self {
        WeightConstraints::default()
    }

    /// Raw constraint `Σ coefs·w ≤ rhs`.
    pub fn leq(mut self, coefs: Vec<(usize, f64)>, rhs: f64) -> Self {
        self.rows.push((coefs, rhs));
        self
    }

    /// Raw constraint `Σ coefs·w ≥ rhs` (stored negated).
    pub fn geq(self, coefs: Vec<(usize, f64)>, rhs: f64) -> Self {
        let neg: Vec<(usize, f64)> = coefs.into_iter().map(|(i, c)| (i, -c)).collect();
        self.leq(neg, -rhs)
    }

    /// Lower-bound one weight: `w_attr ≥ lo` (Example 1: "points scored
    /// should feature prominently — coefficient of P at least 0.1").
    pub fn min_weight(self, attr: usize, lo: f64) -> Self {
        self.geq(vec![(attr, 1.0)], lo)
    }

    /// Upper-bound one weight: `w_attr ≤ hi`.
    pub fn max_weight(self, attr: usize, hi: f64) -> Self {
        self.leq(vec![(attr, 1.0)], hi)
    }

    /// Lower-bound a group sum: `Σ_{a∈attrs} w_a ≥ lo` (Example 1:
    /// bounds "on the sum of selected coefficients, e.g. all defensive
    /// skills").
    pub fn min_group(self, attrs: &[usize], lo: f64) -> Self {
        self.geq(attrs.iter().map(|&a| (a, 1.0)).collect(), lo)
    }

    /// Upper-bound a group sum.
    pub fn max_group(self, attrs: &[usize], hi: f64) -> Self {
        self.leq(attrs.iter().map(|&a| (a, 1.0)).collect(), hi)
    }

    /// Number of constraint rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate rows as `(coefs, rhs)` meaning `Σ coefs·w ≤ rhs`.
    pub fn rows(&self) -> impl Iterator<Item = (&[(usize, f64)], f64)> {
        self.rows.iter().map(|(c, r)| (c.as_slice(), *r))
    }

    /// Whether a weight vector satisfies all rows (within `1e-9`).
    pub fn satisfied_by(&self, w: &[f64]) -> bool {
        self.rows.iter().all(|(coefs, rhs)| {
            let lhs: f64 = coefs.iter().map(|&(i, c)| c * w[i]).sum();
            lhs <= rhs + 1e-9
        })
    }

    /// Add all rows to an LP whose first `m` variables are the weights.
    pub fn apply_to(&self, lp: &mut LpProblem, weight_vars: &[VarId]) {
        for (coefs, rhs) in &self.rows {
            let terms: Vec<(VarId, f64)> =
                coefs.iter().map(|&(i, c)| (weight_vars[i], c)).collect();
            lp.add_constraint(&terms, Op::Le, *rhs);
        }
    }

    /// Largest attribute index referenced (for validation).
    pub fn max_attr(&self) -> Option<usize> {
        self.rows
            .iter()
            .flat_map(|(c, _)| c.iter().map(|&(i, _)| i))
            .max()
    }
}

/// An OPT instance: dataset + given ranking + weight predicate +
/// tolerances (Definition 4), plus optional position-range constraints
/// (Example 1's outcome constraints).
#[derive(Clone, Debug)]
pub struct OptProblem {
    /// The relation `R`.
    pub data: Dataset,
    /// The given ranking `π`.
    pub given: GivenRanking,
    /// The weight predicate `P`.
    pub constraints: WeightConstraints,
    /// Comparison tolerances (`ε`, `ε1`, `ε2`, `τ`).
    pub tol: Tolerances,
    /// Allowed rank windows for selected ranked tuples.
    pub positions: crate::positions::PositionConstraints,
    /// The error measure the solvers optimize (Section II: "our approach
    /// generalizes to other error measures" — Kendall tau and the
    /// top-weighted variant in addition to Definition 3).
    pub objective: ErrorMeasure,
}

impl OptProblem {
    /// Build with default tolerances (`ε = 0` and a hairline indicator
    /// gap — appropriate for well-separated data; use
    /// [`OptProblem::with_tolerances`] for the paper's per-dataset
    /// settings).
    pub fn new(data: Dataset, given: GivenRanking) -> Result<Self, ProblemError> {
        Self::with_all(data, given, WeightConstraints::none(), Tolerances::exact())
    }

    /// Build with explicit tolerances.
    pub fn with_tolerances(
        data: Dataset,
        given: GivenRanking,
        tol: Tolerances,
    ) -> Result<Self, ProblemError> {
        Self::with_all(data, given, WeightConstraints::none(), tol)
    }

    /// Build with constraints and tolerances.
    pub fn with_all(
        data: Dataset,
        given: GivenRanking,
        constraints: WeightConstraints,
        tol: Tolerances,
    ) -> Result<Self, ProblemError> {
        if data.n() != given.len() {
            return Err(ProblemError::LengthMismatch {
                rows: data.n(),
                ranking: given.len(),
            });
        }
        if let Some(max) = constraints.max_attr() {
            if max >= data.m() {
                return Err(ProblemError::BadAttribute {
                    index: max,
                    m: data.m(),
                });
            }
        }
        Ok(OptProblem {
            data,
            given,
            constraints,
            tol,
            positions: crate::positions::PositionConstraints::none(),
            objective: ErrorMeasure::Position,
        })
    }

    /// Switch the objective the solvers optimize. [`ErrorMeasure::Position`]
    /// is Definition 3; [`ErrorMeasure::KendallTau`] minimizes inverted
    /// top-k pairs; [`ErrorMeasure::TopWeighted`] penalizes displacement
    /// near the top of the ranking more heavily.
    pub fn with_objective(mut self, objective: ErrorMeasure) -> Self {
        self.objective = objective;
        self
    }

    /// Attach position-range constraints. Every constrained tuple must
    /// be a *ranked* tuple of `π` (constraining `⊥` tuples is not
    /// supported — use the why-not formulation of \[35\] for that).
    pub fn with_positions(
        mut self,
        positions: crate::positions::PositionConstraints,
    ) -> Result<Self, ProblemError> {
        for (t, _) in positions.iter() {
            if t >= self.given.len() || self.given.position(t).is_none() {
                return Err(ProblemError::UnrankedPositionConstraint { tuple: t });
            }
        }
        self.positions = positions;
        Ok(self)
    }

    /// Objective value of `weights` if all position constraints are met,
    /// `None` otherwise.
    pub fn evaluate_constrained(&self, weights: &[f64]) -> Option<u64> {
        if !self.positions.is_empty() {
            let scores = rankhow_ranking::scores_f64(self.data.features(), weights);
            let ok = self
                .positions
                .satisfied(|t| rankhow_ranking::rank_of_in(&scores, t, self.tol.eps));
            if !ok {
                return None;
            }
        }
        Some(self.objective_value(weights))
    }

    /// Replace the constraint predicate (constraint-exploration loop of
    /// Example 1: solve, inspect, constrain, re-solve).
    pub fn with_constraints(
        mut self,
        constraints: WeightConstraints,
    ) -> Result<Self, ProblemError> {
        if let Some(max) = constraints.max_attr() {
            if max >= self.data.m() {
                return Err(ProblemError::BadAttribute {
                    index: max,
                    m: self.data.m(),
                });
            }
        }
        self.constraints = constraints;
        Ok(self)
    }

    /// Number of tuples.
    pub fn n(&self) -> usize {
        self.data.n()
    }

    /// Number of attributes.
    pub fn m(&self) -> usize {
        self.data.m()
    }

    /// Position error of a weight vector (Definition 3 under `ε`),
    /// regardless of the configured [`OptProblem::objective`].
    pub fn evaluate(&self, weights: &[f64]) -> u64 {
        rankhow_ranking::evaluate_weights(self.data.features(), &self.given, weights, self.tol.eps)
    }

    /// Value of the configured objective for a weight vector. Equals
    /// [`OptProblem::evaluate`] when the objective is
    /// [`ErrorMeasure::Position`].
    pub fn objective_value(&self, weights: &[f64]) -> u64 {
        if self.objective == ErrorMeasure::Position {
            return self.evaluate(weights);
        }
        let scores = rankhow_ranking::scores_f64(self.data.features(), weights);
        let ranks = rankhow_ranking::score_ranks(&scores, self.tol.eps);
        rankhow_ranking::error_by_measure(self.objective, &self.given, &ranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Dataset, GivenRanking) {
        let data = Dataset::from_rows(
            vec!["a".into(), "b".into()],
            vec![vec![2.0, 0.0], vec![1.0, 1.0], vec![0.0, 2.0]],
        )
        .unwrap();
        let given = GivenRanking::from_positions(vec![Some(1), Some(2), None]).unwrap();
        (data, given)
    }

    #[test]
    fn length_mismatch_rejected() {
        let (data, _) = toy();
        let short = GivenRanking::from_positions(vec![Some(1), None]).unwrap();
        assert!(matches!(
            OptProblem::new(data, short),
            Err(ProblemError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn bad_attribute_in_constraints_rejected() {
        let (data, given) = toy();
        let c = WeightConstraints::none().min_weight(5, 0.1);
        assert!(matches!(
            OptProblem::with_all(data, given, c, Tolerances::exact()),
            Err(ProblemError::BadAttribute { index: 5, .. })
        ));
    }

    #[test]
    fn constraint_builder_and_satisfaction() {
        let c = WeightConstraints::none()
            .min_weight(0, 0.1)
            .max_weight(1, 0.5)
            .min_group(&[0, 1], 0.4);
        assert_eq!(c.len(), 3);
        assert!(c.satisfied_by(&[0.3, 0.2]));
        assert!(!c.satisfied_by(&[0.05, 0.2])); // w0 too small
        assert!(!c.satisfied_by(&[0.3, 0.6])); // w1 too big
        assert!(!c.satisfied_by(&[0.1, 0.1])); // group too small
    }

    #[test]
    fn geq_negation_roundtrip() {
        let c = WeightConstraints::none().geq(vec![(0, 2.0), (1, -1.0)], 0.5);
        // 2w0 − w1 ≥ 0.5
        assert!(c.satisfied_by(&[0.5, 0.2]));
        assert!(!c.satisfied_by(&[0.2, 0.2]));
    }

    #[test]
    fn apply_to_lp_matches_satisfied_by() {
        use rankhow_lp::{Problem as Lp, Sense, Status};
        let c = WeightConstraints::none().min_weight(0, 0.4);
        let mut lp = Lp::new(Sense::Minimize);
        let w0 = lp.add_var("w0", 0.0, 1.0, 0.0);
        let w1 = lp.add_var("w1", 0.0, 1.0, 0.0);
        lp.add_constraint(&[(w0, 1.0), (w1, 1.0)], Op::Eq, 1.0);
        c.apply_to(&mut lp, &[w0, w1]);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!(c.satisfied_by(&sol.x));
    }

    #[test]
    fn evaluate_uses_eps() {
        let (data, given) = toy();
        let p = OptProblem::new(data, given).unwrap();
        assert_eq!(p.evaluate(&[1.0, 0.0]), 0);
        // Reversed ranking: ranks become [3, 2, 1], so the two ranked
        // tuples contribute |1−3| + |2−2| = 2.
        assert_eq!(p.evaluate(&[0.0, 1.0]), 2);
        assert_eq!(p.n(), 3);
        assert_eq!(p.m(), 2);
    }
}
