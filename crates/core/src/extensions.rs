//! Constraint vocabulary beyond weight bounds (paper Example 1 and the
//! Section I generalizations).
//!
//! Example 1 sketches several constraint families: pairwise orders
//! ("Nikola Jokić must be ranked higher than Jayson Tatum"), pinned
//! positions ("the number-1 player must be in position 1"), and rank
//! windows (fitting positions 30–50 of a university ranking). These all
//! reduce to machinery already in the system:
//!
//! - a pairwise order is a *data-induced weight constraint*
//!   `(x_a − x_b)·w ≥ ε1`;
//! - pinning a tuple to position 1 is the conjunction of pairwise orders
//!   against every other ranked tuple;
//! - a rank window is a re-based [`GivenRanking`] whose out-of-window
//!   tuples become `⊥`;
//! - alternative error measures (Kendall tau, top-weighted) evaluate any
//!   fitted function via [`evaluate_measure`].

use crate::{OptProblem, WeightConstraints};
use rankhow_data::Dataset;
use rankhow_ranking::{
    error_by_measure, score_ranks, scores_f64, ErrorMeasure, GivenRanking, RankingError,
};

/// Add the pairwise order "tuple `above` must outscore tuple `below`"
/// as a weight constraint: `Σ w_j (above.A_j − below.A_j) ≥ ε1`.
pub fn require_order(
    constraints: WeightConstraints,
    data: &Dataset,
    above: usize,
    below: usize,
    eps1: f64,
) -> WeightConstraints {
    let coefs: Vec<(usize, f64)> = (0..data.m())
        .map(|j| (j, data.value(above, j) - data.value(below, j)))
        .collect();
    constraints.geq(coefs, eps1)
}

/// Pin `tuple` to position 1: it must outscore every other ranked tuple.
pub fn require_first(
    mut constraints: WeightConstraints,
    problem: &OptProblem,
    tuple: usize,
) -> WeightConstraints {
    for &other in problem.given.top_k() {
        if other != tuple {
            constraints = require_order(constraints, &problem.data, tuple, other, problem.tol.eps1);
        }
    }
    constraints
}

/// Build a rank-window ranking from full positions: tuples whose
/// position lies in `[from, to]` are re-based to `1..=(to−from+1)`;
/// everything else becomes `⊥`.
///
/// This is the "university ranked at position 50 wants a function fit to
/// positions 30–50" use case. Tuples ranked above the window become `⊥`,
/// i.e. their order relative to the window is not enforced — the window
/// ranking asks only that the window tuples appear in their given
/// relative order.
pub fn window_ranking(
    full_positions: &[u32],
    from: u32,
    to: u32,
) -> Result<GivenRanking, RankingError> {
    assert!(from >= 1 && from <= to, "invalid window");
    let positions: Vec<Option<u32>> = full_positions
        .iter()
        .map(|&p| {
            if p >= from && p <= to {
                Some(p - from + 1)
            } else {
                None
            }
        })
        .collect();
    GivenRanking::from_positions(positions)
}

/// Evaluate a weight vector under an alternative error measure
/// (Section II: "RankHow supports Kendall's Tau and other measures based
/// on inversions, including variations that assign a greater penalty to
/// errors higher in the ranking").
pub fn evaluate_measure(problem: &OptProblem, weights: &[f64], measure: ErrorMeasure) -> u64 {
    let scores = scores_f64(problem.data.features(), weights);
    let ranks = score_ranks(&scores, problem.tol.eps);
    error_by_measure(measure, &problem.given, &ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RankHow;
    use rankhow_ranking::Tolerances;

    fn nba_toy() -> OptProblem {
        // Four "players": 0 and 1 are close; the given ranking puts 1
        // above 0.
        let data = Dataset::from_rows(
            vec!["PTS".into(), "AST".into()],
            vec![
                vec![30.0, 5.0],
                vec![28.0, 9.0],
                vec![20.0, 3.0],
                vec![10.0, 10.0],
            ],
        )
        .unwrap();
        let given = GivenRanking::from_positions(vec![Some(2), Some(1), Some(3), None]).unwrap();
        // ε1 with a real margin: order constraints built from it must
        // survive LP round-off (a 1e-12 margin would not).
        OptProblem::with_tolerances(data, given, Tolerances::explicit(0.0, 1e-4, 0.0)).unwrap()
    }

    #[test]
    fn pairwise_order_flips_solution() {
        let base = nba_toy();
        // Unconstrained: an assist-heavy function ranks tuple 1 first
        // (error 0 exists: w = (0.2, 0.8): scores 10, 12.8, 6.4, 10 —
        // hmm tuple 3 ties tuple 0; pick by solver).
        let free = RankHow::new().solve(&base).unwrap();
        assert_eq!(free.error, 0);
        // Now require tuple 0 to be ranked above tuple 1 — contradicting
        // the given ranking, so error must become positive.
        let constrained = base
            .clone()
            .with_constraints(require_order(
                WeightConstraints::none(),
                &base.data,
                0,
                1,
                base.tol.eps1,
            ))
            .unwrap();
        let sol = RankHow::new().solve(&constrained).unwrap();
        assert!(sol.error >= 1, "forcing the wrong order costs error");
        // The returned function indeed scores tuple 0 above tuple 1.
        let s0: f64 = sol
            .weights
            .iter()
            .zip(base.data.row(0))
            .map(|(w, a)| w * a)
            .sum();
        let s1: f64 = sol
            .weights
            .iter()
            .zip(base.data.row(1))
            .map(|(w, a)| w * a)
            .sum();
        assert!(s0 > s1);
    }

    #[test]
    fn require_first_pins_the_top() {
        let base = nba_toy();
        let constrained = base
            .clone()
            .with_constraints(require_first(WeightConstraints::none(), &base, 1))
            .unwrap();
        let sol = RankHow::new().solve(&constrained).unwrap();
        let scores = scores_f64(base.data.features(), &sol.weights);
        let ranks = score_ranks(&scores, base.tol.eps);
        assert_eq!(ranks[1], 1, "tuple 1 pinned to position 1");
    }

    #[test]
    fn window_rebasing() {
        let full = [1u32, 2, 3, 4, 5, 6];
        let w = window_ranking(&full, 3, 5).unwrap();
        assert_eq!(
            w.positions(),
            &[None, None, Some(1), Some(2), Some(3), None]
        );
        assert_eq!(w.k(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid window")]
    fn window_bounds_validated() {
        let _ = window_ranking(&[1, 2, 3], 3, 2);
    }

    #[test]
    fn measures_diverge_on_top_heavy_mistakes() {
        let p = nba_toy();
        // A points-only function: scores 30, 28, 20, 10 → ranks
        // 1,2,3,4 vs given [2,1,3,⊥]: both top tuples off by one.
        let w = [1.0, 0.0];
        let pos = evaluate_measure(&p, &w, ErrorMeasure::Position);
        let tau = evaluate_measure(&p, &w, ErrorMeasure::KendallTau);
        let top = evaluate_measure(&p, &w, ErrorMeasure::TopWeighted);
        assert_eq!(pos, 2);
        assert_eq!(tau, 1); // one inverted pair
        assert!(top > pos, "top-weighted penalizes the #1 slot more");
    }
}
