//! Warm-started LP parity: the incremental LP layer (objective swaps,
//! dual-simplex row additions, basis snapshots) must change how much
//! *work* the engine does, never what it *proves*.
//!
//! `SolverConfig::warm_lp: false` is the escape hatch that re-solves
//! every node LP from an empty basis; these proptests pin that the two
//! modes prove bit-identical optimal errors across thread counts, and a
//! deterministic release-grade test asserts the warm mode's whole point:
//! strictly fewer simplex pivots for the same proved optimum.

use proptest::prelude::*;
use rankhow_core::{OptProblem, RankHow, SolverConfig, Tolerances};
use rankhow_data::Dataset;
use rankhow_ranking::GivenRanking;

/// A random small OPT instance: integer-grid attributes (well-separated
/// score differences) and a shuffled top-k given ranking.
#[derive(Debug, Clone)]
struct SmallInstance {
    rows: Vec<Vec<f64>>,
    k: usize,
    perm_seed: u64,
}

fn small_instance() -> impl Strategy<Value = SmallInstance> {
    (4usize..8, 2usize..4, any::<u64>()).prop_flat_map(|(n, m, perm_seed)| {
        prop::collection::vec(prop::collection::vec((0u32..10).prop_map(f64::from), m), n).prop_map(
            move |rows| SmallInstance {
                rows,
                k: 3.min(n - 1),
                perm_seed,
            },
        )
    })
}

fn build(inst: &SmallInstance) -> Option<OptProblem> {
    let n = inst.rows.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = inst.perm_seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    let mut positions = vec![None; n];
    for (pos, &idx) in order.iter().take(inst.k).enumerate() {
        positions[idx] = Some(pos as u32 + 1);
    }
    let names = (0..inst.rows[0].len()).map(|j| format!("A{j}")).collect();
    let data = Dataset::from_rows(names, inst.rows.clone()).ok()?;
    let given = GivenRanking::from_positions(positions).ok()?;
    OptProblem::with_tolerances(data, given, Tolerances::exact()).ok()
}

fn solve(
    problem: &OptProblem,
    warm_lp: bool,
    propagate: bool,
    threads: usize,
) -> rankhow_core::Solution {
    solve_b(problem, warm_lp, propagate, true, threads)
}

fn solve_b(
    problem: &OptProblem,
    warm_lp: bool,
    propagate: bool,
    batched_kernels: bool,
    threads: usize,
) -> rankhow_core::Solution {
    RankHow::with_config(SolverConfig {
        threads,
        warm_lp,
        propagate,
        batched_kernels,
        ..SolverConfig::default()
    })
    .solve(problem)
    .expect("feasible unconstrained instance")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold, warm, and warm-with-propagation engines prove bit-identical
    /// optimal errors across thread counts {1, 2, 4}, and every returned
    /// weight vector realizes its claimed error under the Definition 2
    /// evaluator. This is the three-way parity pin for decided-pair
    /// bound propagation: skipping a probe must never change what the
    /// search proves, only how many LPs it pays for the proof.
    #[test]
    fn warm_cold_and_propagated_prove_identical_optima(inst in small_instance()) {
        let Some(problem) = build(&inst) else {
            return Err(TestCaseError::reject("invalid ranking"));
        };
        let cold = solve(&problem, false, false, 1);
        prop_assert!(cold.optimal, "cold search must close the tree");
        prop_assert_eq!(problem.evaluate(&cold.weights), cold.error);
        for threads in [1usize, 2, 4] {
            for propagate in [false, true] {
                let mode = if propagate { "propagated" } else { "warm" };
                let warm = solve(&problem, true, propagate, threads);
                prop_assert!(
                    warm.optimal,
                    "{mode} {threads}-thread search must close the tree"
                );
                prop_assert_eq!(
                    warm.error, cold.error,
                    "{} ({} threads) disagrees with cold optimum", mode, threads
                );
                prop_assert_eq!(problem.evaluate(&warm.weights), warm.error);
                prop_assert!(
                    warm.stats.lp_warm_starts + warm.stats.lp_cold_starts >= warm.stats.nodes,
                    "every expanded node accounts one LP start"
                );
                if !propagate {
                    prop_assert_eq!(
                        warm.stats.probes_skipped, 0,
                        "escape hatch must not skip probes"
                    );
                }
            }
        }
        // The escape hatch really is cold: no snapshot ever installs.
        let cold4 = solve(&problem, false, false, 4);
        prop_assert_eq!(cold4.stats.lp_warm_starts, 0, "cold mode must not warm-start");
        prop_assert_eq!(cold4.error, cold.error);
    }

    /// The PR-7 three-way pin: the batched probe re-pricing sweep
    /// (`batched_kernels: true`, the default), the per-probe warm path
    /// (the runtime escape hatch), and the cold engine prove
    /// bit-identical optimal errors across thread counts {1, 2, 4}. The
    /// compile-time escape hatch is the third leg: CI re-runs this very
    /// test under `--features scalar-kernels`, so scalar and chunked
    /// kernels are pinned against the same family of instances.
    #[test]
    fn batched_and_per_probe_warm_prove_identical_optima(inst in small_instance()) {
        let Some(problem) = build(&inst) else {
            return Err(TestCaseError::reject("invalid ranking"));
        };
        let cold = solve_b(&problem, false, false, false, 1);
        prop_assert!(cold.optimal, "cold search must close the tree");
        for threads in [1usize, 2, 4] {
            let batched = solve_b(&problem, true, true, true, threads);
            let per_probe = solve_b(&problem, true, true, false, threads);
            prop_assert!(batched.optimal && per_probe.optimal);
            prop_assert_eq!(
                batched.error, cold.error,
                "batched ({} threads) disagrees with cold optimum", threads
            );
            prop_assert_eq!(
                per_probe.error, cold.error,
                "per-probe ({} threads) disagrees with cold optimum", threads
            );
            prop_assert_eq!(problem.evaluate(&batched.weights), batched.error);
            prop_assert_eq!(problem.evaluate(&per_probe.weights), per_probe.error);
            // The sweep really runs when enabled (a warm-loaded node's
            // tightening sweeps unless every probe was skipped — the
            // root's never are) and never when off. A search settled by
            // a root heuristic expands no node and thus sweeps nothing.
            prop_assert!(
                batched.stats.nodes == 0 || batched.stats.batched_sweeps > 0,
                "batched mode expanded {} nodes but never swept ({} threads)",
                batched.stats.nodes, threads
            );
            prop_assert_eq!(
                per_probe.stats.batched_sweeps, 0,
                "escape hatch must not sweep"
            );
            prop_assert_eq!(per_probe.stats.probe_objectives_batched, 0);
        }
    }

    /// Warm-starting performs at most as many simplex pivots as cold on
    /// the same instance at one thread (usually far fewer — the strict
    /// assertion lives in the deterministic test below, this one guards
    /// the whole random family against regressions).
    #[test]
    fn warm_never_pivots_more_than_cold_sequentially(inst in small_instance()) {
        let Some(problem) = build(&inst) else {
            return Err(TestCaseError::reject("invalid ranking"));
        };
        let cold = solve(&problem, false, false, 1);
        let warm = solve(&problem, true, false, 1);
        prop_assert_eq!(warm.error, cold.error);
        // Identical trees are not guaranteed (boxes may differ in the
        // last ulp), so compare per-LP effort: pivots per LP solve.
        let warm_rate = warm.stats.lp_pivots as f64 / warm.stats.lp_solves.max(1) as f64;
        let cold_rate = cold.stats.lp_pivots as f64 / cold.stats.lp_solves.max(1) as f64;
        prop_assert!(
            warm_rate <= cold_rate + 1e-9,
            "warm pivots/LP {} exceeds cold {}", warm_rate, cold_rate
        );
    }
}

/// The acceptance-criteria pin, on fixed instances (deterministic in
/// release *and* debug): warm probes/children perform strictly fewer
/// simplex pivots than cold for the same proved optimum, and snapshots
/// actually install (`lp_warm_starts > 0`).
#[test]
fn warm_start_strictly_reduces_pivots_on_fixed_instances() {
    let fixtures: [(&[&[f64]], usize, u64); 2] = [
        (
            &[
                &[1.0, 5.0, 2.0],
                &[8.0, 6.0, 1.0],
                &[7.0, 1.0, 4.0],
                &[0.0, 8.0, 3.0],
                &[5.0, 2.0, 9.0],
                &[3.0, 3.0, 3.0],
            ],
            3,
            0x5eed,
        ),
        (
            &[
                &[9.0, 5.0],
                &[7.0, 7.0],
                &[6.0, 4.0],
                &[2.0, 2.0],
                &[3.0, 0.0],
                &[6.0, 5.0],
                &[1.0, 8.0],
            ],
            3,
            42,
        ),
    ];
    for (rows, k, seed) in fixtures {
        let inst = SmallInstance {
            rows: rows.iter().map(|r| r.to_vec()).collect(),
            k,
            perm_seed: seed,
        };
        let problem = build(&inst).expect("fixture builds");
        let cold = solve(&problem, false, false, 1);
        let warm = solve(&problem, true, false, 1);
        assert!(cold.optimal && warm.optimal);
        assert_eq!(warm.error, cold.error, "seed {seed}: optima diverge");
        assert!(
            warm.stats.lp_warm_starts > 0,
            "seed {seed}: no basis snapshot ever installed"
        );
        assert_eq!(cold.stats.lp_warm_starts, 0);
        assert!(
            warm.stats.lp_pivots < cold.stats.lp_pivots,
            "seed {seed}: warm pivots {} not strictly below cold {}",
            warm.stats.lp_pivots,
            cold.stats.lp_pivots
        );
    }
}

/// The PR-6 acceptance pin, on a fixed branching instance: decided-pair
/// bound propagation proves the same optimum while paying strictly
/// fewer probe LPs per node than plain warm-starting (cross-multiplied
/// to stay in integers), with the skip counters populated.
#[test]
fn propagation_strictly_reduces_probe_lps_on_fixed_instance() {
    // Anti-correlated attributes force the search to branch deep enough
    // that parents hand real bound facts to their children (a couple of
    // hundred nodes), while staying fast in debug builds.
    let rows: Vec<Vec<f64>> = (0..9)
        .map(|i| vec![f64::from(i), f64::from(8 - i), f64::from((i * 5) % 7)])
        .collect();
    let mut positions: Vec<Option<u32>> = vec![None; 9];
    positions[3] = Some(1);
    positions[7] = Some(2);
    let names = (0..3).map(|j| format!("A{j}")).collect();
    let data = Dataset::from_rows(names, rows).expect("fixture rows");
    let given = GivenRanking::from_positions(positions).expect("fixture ranking");
    let problem = OptProblem::new(data, given).expect("fixture builds");
    let warm = solve(&problem, true, false, 1);
    let prop = solve(&problem, true, true, 1);
    assert!(warm.optimal && prop.optimal);
    assert_eq!(prop.error, warm.error, "propagation changed the optimum");
    assert_eq!(warm.stats.probes_skipped, 0);
    assert!(
        prop.stats.probes_skipped > 0,
        "propagation never skipped a probe"
    );
    assert!(
        prop.stats.lp_solves * warm.stats.nodes < warm.stats.lp_solves * prop.stats.nodes,
        "lp/node did not drop: prop {}/{} vs warm {}/{}",
        prop.stats.lp_solves,
        prop.stats.nodes,
        warm.stats.lp_solves,
        warm.stats.nodes
    );
}
