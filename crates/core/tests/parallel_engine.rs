//! Cross-validation of the parallel branch-and-bound engine against the
//! sequential one.
//!
//! The parallel engine shares bounds, incumbents, and termination logic
//! with the sequential driver but explores in a nondeterministic
//! interleaving; these tests pin down what must NOT depend on that
//! interleaving — the proved optimal error, exact-arithmetic
//! verifiability of the returned weights, and feasibility outcomes.

use proptest::prelude::*;
use rankhow_core::{OptProblem, RankHow, SolverConfig, Tolerances};
use rankhow_data::Dataset;
use rankhow_ranking::GivenRanking;

/// A random small OPT instance: integer-grid attributes (well-separated
/// score differences) and a shuffled top-k given ranking.
#[derive(Debug, Clone)]
struct SmallInstance {
    rows: Vec<Vec<f64>>,
    k: usize,
    perm_seed: u64,
}

fn small_instance() -> impl Strategy<Value = SmallInstance> {
    (4usize..8, 2usize..4, any::<u64>()).prop_flat_map(|(n, m, perm_seed)| {
        prop::collection::vec(prop::collection::vec((0u32..10).prop_map(f64::from), m), n).prop_map(
            move |rows| SmallInstance {
                rows,
                k: 3.min(n - 1),
                perm_seed,
            },
        )
    })
}

fn build(inst: &SmallInstance) -> Option<OptProblem> {
    let n = inst.rows.len();
    // Deterministic Fisher–Yates from the seed: the ranked prefix is a
    // random subset in random order, so most instances have nonzero
    // optimal error (the interesting case for bound parity).
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = inst.perm_seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    let mut positions = vec![None; n];
    for (pos, &idx) in order.iter().take(inst.k).enumerate() {
        positions[idx] = Some(pos as u32 + 1);
    }
    let names = (0..inst.rows[0].len()).map(|j| format!("A{j}")).collect();
    let data = Dataset::from_rows(names, inst.rows.clone()).ok()?;
    let given = GivenRanking::from_positions(positions).ok()?;
    OptProblem::with_tolerances(data, given, Tolerances::exact()).ok()
}

fn solve_with_threads(problem: &OptProblem, threads: usize) -> (u64, Vec<f64>, bool) {
    let sol = RankHow::with_config(SolverConfig {
        threads,
        ..SolverConfig::default()
    })
    .solve(problem)
    .expect("feasible unconstrained instance");
    (sol.error, sol.weights, sol.optimal)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// 1, 2, and 4 worker threads must prove the same optimal error, and
    /// every returned weight vector must realize exactly the claimed
    /// error under the Definition 2 evaluator. (Exact-rational
    /// verification can legitimately disagree at ε = 0 — the Table III
    /// false positives — so it is not asserted per instance.)
    #[test]
    fn thread_counts_agree_on_optimal_error(inst in small_instance()) {
        let Some(problem) = build(&inst) else {
            return Err(TestCaseError::reject("invalid ranking"));
        };
        let (seq_err, seq_w, seq_opt) = solve_with_threads(&problem, 1);
        prop_assert!(seq_opt, "sequential search must close the tree");
        prop_assert_eq!(
            problem.evaluate(&seq_w), seq_err,
            "sequential weights do not realize the claimed error"
        );
        for threads in [2usize, 4] {
            let (err, w, opt) = solve_with_threads(&problem, threads);
            prop_assert!(opt, "{threads}-thread search must close the tree");
            prop_assert_eq!(
                err, seq_err,
                "{} threads disagree with sequential optimum", threads
            );
            prop_assert_eq!(
                problem.evaluate(&w), err,
                "{}-thread weights do not realize the claimed error", threads
            );
        }
    }

    /// Repeated runs at a fixed thread count agree: scheduling noise may
    /// reorder the search but never change the proved optimum.
    #[test]
    fn fixed_thread_count_is_deterministic(inst in small_instance()) {
        let Some(problem) = build(&inst) else {
            return Err(TestCaseError::reject("invalid ranking"));
        };
        let (first_err, _, first_opt) = solve_with_threads(&problem, 4);
        prop_assert!(first_opt);
        for _ in 0..3 {
            let (err, w, opt) = solve_with_threads(&problem, 4);
            prop_assert!(opt);
            prop_assert_eq!(err, first_err, "re-run changed the proved optimum");
            prop_assert_eq!(problem.evaluate(&w), err);
        }
    }
}

/// Position-constrained instances: the parallel engine must agree with
/// the sequential one on feasibility *and* on the constrained optimum.
#[test]
fn parallel_agrees_under_position_constraints() {
    let data = Dataset::from_rows(
        vec!["a".into(), "b".into()],
        vec![
            vec![5.0, 1.0],
            vec![1.0, 5.0],
            vec![3.0, 3.0],
            vec![0.5, 0.5],
        ],
    )
    .unwrap();
    let given = GivenRanking::from_positions(vec![Some(1), Some(3), Some(2), None]).unwrap();
    let problem = OptProblem::new(data, given).unwrap();
    let pinned = problem
        .with_positions(rankhow_core::PositionConstraints::none().pin(1, 1))
        .unwrap();
    let (seq_err, _, seq_opt) = solve_with_threads(&pinned, 1);
    let (par_err, par_w, par_opt) = solve_with_threads(&pinned, 4);
    assert!(seq_opt && par_opt);
    assert_eq!(seq_err, par_err);
    // The pinned tuple's realized rank must be honored by the parallel
    // engine's incumbent filter too.
    let scores = rankhow_ranking::scores_f64(pinned.data.features(), &par_w);
    assert_eq!(rankhow_ranking::rank_of_in(&scores, 1, pinned.tol.eps), 1);
}
