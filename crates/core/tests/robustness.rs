//! Failure-injection and pathological-input tests: huge magnitudes,
//! catastrophic cancellation, duplicate tuples, constant attributes,
//! degenerate rankings — the solver must stay sound (verified claims or
//! explicit errors), never silently wrong.

use rankhow_core::{
    verify, OptProblem, RankHow, SatSearch, SolverConfig, SymGd, SymGdConfig, Tolerances,
};
use rankhow_data::Dataset;
use rankhow_ranking::GivenRanking;
use std::time::Duration;

fn problem(rows: Vec<Vec<f64>>, positions: Vec<Option<u32>>, tol: Tolerances) -> OptProblem {
    let m = rows[0].len();
    let names = (0..m).map(|i| format!("A{i}")).collect();
    let data = Dataset::from_rows(names, rows).unwrap();
    let given = GivenRanking::from_positions(positions).unwrap();
    OptProblem::with_tolerances(data, given, tol).unwrap()
}

/// Magnitudes near 1e15: f64 *full-row* score sums round at the ±0.25
/// level, large enough to flip comparisons against a small ε. With an
/// ε well above that rounding noise and separations well away from the
/// ε boundary, the returned claim still verifies exactly (the Section
/// V-A mechanism under stress).
#[test]
fn huge_magnitudes_still_verify_with_adequate_gap() {
    let p = problem(
        vec![
            vec![1e15, 30.0],
            vec![1e15, 20.0],
            vec![1e15, 10.0],
            vec![9e14, 90.0],
        ],
        vec![Some(1), Some(2), Some(3), None],
        // ε = 1 dominates the ~0.25 rounding of 1e15-scale sums; ε1 = 2
        // keeps certified separations twice as far out.
        Tolerances::explicit(1.0, 2.0, 0.0),
    );
    let sol = RankHow::new().solve(&p).unwrap();
    assert_eq!(sol.error, 0, "w = (0, 1) ranks the three perfectly");
    assert!(
        verify::verify_claim(&p, &sol.weights, sol.error),
        "claim {} must survive exact verification",
        sol.error
    );
}

/// A constant (zero-information) attribute must not break anything:
/// its weight is free mass that never separates tuples.
#[test]
fn constant_attribute_is_harmless() {
    let p = problem(
        vec![vec![5.0, 7.0], vec![3.0, 7.0], vec![1.0, 7.0]],
        vec![Some(1), Some(2), Some(3)],
        Tolerances::explicit(1e-6, 2e-6, 0.0),
    );
    let sol = RankHow::new().solve(&p).unwrap();
    assert_eq!(sol.error, 0, "attribute 0 alone ranks perfectly");
    assert!(verify::verify_claim(&p, &sol.weights, sol.error));
}

/// All attributes constant: every tuple ties everywhere; the optimum is
/// fully determined by the tie semantics and must be proved, not hung.
#[test]
fn fully_degenerate_data_terminates() {
    let p = problem(
        vec![vec![1.0, 1.0]; 4],
        vec![Some(1), Some(2), Some(3), None],
        Tolerances::explicit(1e-6, 2e-6, 0.0),
    );
    let sol = RankHow::new().solve(&p).unwrap();
    // Everything ties at rank 1: error = |1−1| + |2−1| + |3−1| = 3.
    assert_eq!(sol.error, 3);
    assert!(sol.optimal);
}

/// Duplicate rows with *different* required positions force error ≥ 1
/// for each duplicated pair; the solver must prove that flatly.
#[test]
fn duplicate_rows_forced_error_is_proved() {
    let p = problem(
        vec![
            vec![4.0, 4.0],
            vec![4.0, 4.0],
            vec![2.0, 2.0],
            vec![2.0, 2.0],
        ],
        vec![Some(1), Some(2), Some(3), Some(4)],
        Tolerances::explicit(1e-6, 2e-6, 0.0),
    );
    let sol = RankHow::new().solve(&p).unwrap();
    // Pairs (0,1) and (2,3) each tie: ranks [1,1,3,3], error 0+1+0+1 = 2.
    assert_eq!(sol.error, 2);
    assert!(sol.optimal);
    assert!(verify::verify_claim(&p, &sol.weights, sol.error));
}

/// k = n (no ⊥ tail) and k = 1 (only the winner) both work.
#[test]
fn extreme_k_values() {
    let rows = vec![
        vec![4.0, 1.0],
        vec![3.0, 2.0],
        vec![2.0, 3.0],
        vec![1.0, 4.0],
    ];
    let full = problem(
        rows.clone(),
        vec![Some(1), Some(2), Some(3), Some(4)],
        Tolerances::explicit(1e-6, 2e-6, 0.0),
    );
    let sol = RankHow::new().solve(&full).unwrap();
    assert_eq!(sol.error, 0, "attribute 0 ranks all four");

    let top1 = problem(
        rows,
        vec![None, None, None, Some(1)],
        Tolerances::explicit(1e-6, 2e-6, 0.0),
    );
    let sol1 = RankHow::new().solve(&top1).unwrap();
    assert_eq!(sol1.error, 0, "attribute 1 puts tuple 3 on top");
}

/// A one-attribute instance: the scoring function is unique (w = [1]);
/// every solver must agree and the error is fixed by the data order.
#[test]
fn single_attribute_unique_function() {
    let p = problem(
        vec![vec![1.0], vec![3.0], vec![2.0]],
        vec![Some(1), Some(2), Some(3)],
        Tolerances::explicit(1e-6, 2e-6, 0.0),
    );
    // Scores [1, 3, 2] → ranks [3, 1, 2] vs π [1, 2, 3]: |1−3|+|2−1|+|3−2| = 4.
    let bnb = RankHow::new().solve(&p).unwrap();
    assert_eq!(bnb.error, 4);
    assert!(bnb.optimal);
    let sat = SatSearch::new().solve(&p).unwrap();
    assert_eq!(sat.error, 4);
}

/// Node-limit exhaustion must degrade to `optimal = false` with a
/// verified incumbent — not an error, not an unverified claim.
#[test]
fn node_limit_degrades_gracefully() {
    // Anti-correlated-ish hard instance.
    let rows: Vec<Vec<f64>> = (0..14)
        .map(|i| {
            let x = i as f64;
            vec![x, 13.0 - x, (x * 7.0) % 13.0]
        })
        .collect();
    let positions: Vec<Option<u32>> = (0..14)
        .map(|i| {
            if i < 6 {
                Some((11 - i) as u32 - 5)
            } else {
                None
            }
        })
        .collect();
    let p = problem(rows, positions, Tolerances::explicit(1e-6, 2e-6, 0.0));
    let sol = RankHow::with_config(SolverConfig {
        node_limit: 3,
        root_samples: 4,
        ..SolverConfig::default()
    })
    .solve(&p)
    .unwrap();
    assert!(verify::verify_claim(&p, &sol.weights, sol.error));
}

/// SYM-GD from a hostile seed (a simplex corner) still produces a
/// verified, seed-no-worse result on nasty data.
#[test]
fn symgd_from_corner_seed_is_sound() {
    let p = problem(
        vec![
            vec![1e12, 2.0, 0.0],
            vec![9e11, 8.0, 1.0],
            vec![8e11, 1.0, 9.0],
            vec![7e11, 5.0, 5.0],
        ],
        vec![Some(1), Some(2), Some(3), None],
        Tolerances::explicit(1e-3, 2e-3, 0.0),
    );
    let seed = vec![1.0, 0.0, 0.0];
    let seed_err = p.objective_value(&seed);
    let res = SymGd::with_config(SymGdConfig {
        cell_size: 0.25,
        adaptive: true,
        total_time: Some(Duration::from_secs(5)),
        ..SymGdConfig::default()
    })
    .solve(&p, &seed)
    .unwrap();
    assert!(res.error <= seed_err);
    assert_eq!(res.error, p.objective_value(&res.weights));
}

/// The τ search heuristic on data engineered to create false positives
/// at tiny ε1: it must settle on a tolerance whose solution verifies.
#[test]
fn tau_search_recovers_from_false_positives() {
    // Near-tied tuples at large magnitude: naive gaps misclassify.
    let rows = vec![vec![1e9 + 2.0, 1.0], vec![1e9 + 1.0, 2.0], vec![1e9, 3.0]];
    let mut p = problem(
        rows,
        vec![Some(1), Some(2), Some(3)],
        Tolerances::from_eps_tau(1e-3, 1e-4),
    );
    p.tol = Tolerances::from_eps_tau(1e-3, 1e-4);
    let tau = verify::find_tau(
        &p,
        |probe| {
            let sol = RankHow::new().solve(probe).ok()?;
            Some((sol.weights, sol.error))
        },
        12,
    );
    // Whatever τ̂ it lands on, the resulting solve must verify.
    let mut final_p = p.clone();
    final_p.tol = Tolerances::from_eps_tau(p.tol.eps, tau);
    let sol = RankHow::new().solve(&final_p).unwrap();
    assert!(verify::verify_claim(&final_p, &sol.weights, sol.error));
}
