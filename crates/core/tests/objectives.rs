//! Cross-validation of the alternative objectives (Section II: "our
//! approach generalizes to other error measures") against an exact
//! enumeration oracle.
//!
//! For `m = 2` the weight simplex is the segment `w = (t, 1−t)`, and
//! every indicator flips at the single point where its score difference
//! crosses the tie tolerance `ε`. Enumerating all crossing points and
//! the midpoints between them therefore visits every cell of the
//! ε-arrangement — an exhaustive oracle for *any* objective, entirely
//! independent of the LP/MILP stack.

use proptest::prelude::*;
use rankhow_core::formulation::{build_milp, reduce_global};
use rankhow_core::{ErrorMeasure, OptProblem, RankHow, Tolerances};
use rankhow_data::Dataset;
use rankhow_milp::MilpStatus;
use rankhow_ranking::GivenRanking;

/// All candidate weight vectors for the m = 2 oracle: indicator
/// crossings, midpoints between consecutive crossings, and the simplex
/// endpoints.
fn m2_candidates(problem: &OptProblem) -> Vec<[f64; 2]> {
    let features = problem.data.features();
    let (col0, col1) = (features.col(0), features.col(1));
    let eps = problem.tol.eps;
    let mut cuts = vec![0.0, 1.0];
    for &r in problem.given.top_k() {
        for s in 0..features.n() {
            if s == r {
                continue;
            }
            let d0 = col0[s] - col0[r];
            let d1 = col1[s] - col1[r];
            // diff(t) = t·d0 + (1−t)·d1 = ε  ⇒  t = (ε − d1)/(d0 − d1)
            if (d0 - d1).abs() > 1e-300 {
                let t = (eps - d1) / (d0 - d1);
                if (0.0..=1.0).contains(&t) {
                    cuts.push(t);
                }
                // The −ε crossing also flips the *reverse* pair when r
                // and s are both ranked; cheap to include regardless.
                let t2 = (-eps - d1) / (d0 - d1);
                if (0.0..=1.0).contains(&t2) {
                    cuts.push(t2);
                }
            }
        }
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup();
    let mut candidates: Vec<[f64; 2]> = cuts.iter().map(|&t| [t, 1.0 - t]).collect();
    for pair in cuts.windows(2) {
        let mid = 0.5 * (pair[0] + pair[1]);
        candidates.push([mid, 1.0 - mid]);
    }
    candidates
}

/// Exhaustive optimum of the configured objective over the m = 2 simplex.
fn m2_optimum(problem: &OptProblem) -> (u64, [f64; 2]) {
    let mut best = (u64::MAX, [0.5, 0.5]);
    for w in m2_candidates(problem) {
        let v = problem.objective_value(&w);
        if v < best.0 {
            best = (v, w);
        }
    }
    best
}

#[derive(Debug, Clone)]
struct Instance {
    rows: Vec<Vec<f64>>,
    k: usize,
    perm_seed: u64,
}

fn instance() -> impl Strategy<Value = Instance> {
    (4usize..7, 2usize..4, any::<u64>()).prop_flat_map(|(n, k, perm_seed)| {
        let k = k.min(n - 1);
        prop::collection::vec(prop::collection::vec(0.0..10.0f64, 2), n)
            .prop_map(move |rows| Instance { rows, k, perm_seed })
    })
}

fn build(inst: &Instance, measure: ErrorMeasure) -> Option<OptProblem> {
    let n = inst.rows.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = inst.perm_seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    let mut positions = vec![None; n];
    for (pos, &idx) in order.iter().take(inst.k).enumerate() {
        positions[idx] = Some(pos as u32 + 1);
    }
    let data = Dataset::from_rows(vec!["A0".into(), "A1".into()], inst.rows.clone()).ok()?;
    let given = GivenRanking::from_positions(positions).ok()?;
    Some(
        OptProblem::with_tolerances(data, given, Tolerances::explicit(1e-4, 2e-4, 0.0))
            .ok()?
            .with_objective(measure),
    )
}

fn check_against_oracle(problem: &OptProblem) -> Result<(), TestCaseError> {
    let sol = RankHow::new().solve(problem).unwrap();
    let (oracle, oracle_w) = m2_optimum(problem);
    // The oracle is the true Definition 4 optimum; the solver can never
    // beat it, and may exceed it only when the optimum hides in the
    // uncertified (ε2, ε1) band (Section V-A false negatives).
    prop_assert!(
        sol.error >= oracle,
        "solver {} below exhaustive oracle {}",
        sol.error,
        oracle
    );
    if sol.error > oracle {
        prop_assert!(
            rankhow_core::verify::relies_on_gap_band(problem, &oracle_w),
            "solver {} missed certified oracle optimum {} at {:?}",
            sol.error,
            oracle,
            oracle_w
        );
    }
    // The claim always verifies exactly.
    prop_assert!(
        rankhow_core::verify::verify_claim(problem, &sol.weights, sol.error),
        "claimed {} failed exact verification",
        sol.error
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn position_objective_matches_m2_oracle(inst in instance()) {
        let Some(problem) = build(&inst, ErrorMeasure::Position) else { return Ok(()); };
        check_against_oracle(&problem)?;
    }

    #[test]
    fn kendall_objective_matches_m2_oracle(inst in instance()) {
        let Some(problem) = build(&inst, ErrorMeasure::KendallTau) else { return Ok(()); };
        check_against_oracle(&problem)?;
    }

    #[test]
    fn top_weighted_objective_matches_m2_oracle(inst in instance()) {
        let Some(problem) = build(&inst, ErrorMeasure::TopWeighted) else { return Ok(()); };
        check_against_oracle(&problem)?;
    }

    #[test]
    fn tau_optimum_never_exceeds_tau_of_position_optimum(inst in instance()) {
        let Some(pos_p) = build(&inst, ErrorMeasure::Position) else { return Ok(()); };
        let tau_p = pos_p.clone().with_objective(ErrorMeasure::KendallTau);
        let pos_sol = RankHow::new().solve(&pos_p).unwrap();
        let tau_sol = RankHow::new().solve(&tau_p).unwrap();
        // Optimizing tau directly is at least as good (on tau) as
        // optimizing position error and measuring tau afterwards.
        prop_assert!(
            tau_sol.error <= tau_p.objective_value(&pos_sol.weights),
            "tau-direct {} worse than tau-via-position {}",
            tau_sol.error,
            tau_p.objective_value(&pos_sol.weights)
        );
    }

    #[test]
    fn generic_milp_agrees_on_kendall_tau(inst in instance()) {
        let Some(problem) = build(&inst, ErrorMeasure::KendallTau) else { return Ok(()); };
        let specialized = RankHow::new().solve(&problem).unwrap();
        let sys = reduce_global(&problem);
        let (milp, layout) = build_milp(&problem, &sys);
        let generic = milp.solve().unwrap();
        prop_assert_eq!(generic.status, MilpStatus::Optimal);
        let w: Vec<f64> = layout.w.iter().map(|&v| generic.x[v]).collect();
        let generic_tau = problem.objective_value(&w);
        // The z-encoding's objective must match the verified tau of its
        // own weights.
        prop_assert!(
            (generic.objective - generic_tau as f64).abs() < 1e-4,
            "milp tau objective {} vs verified {}",
            generic.objective,
            generic_tau
        );
        // Same certified-space relationship as for position error.
        prop_assert!(
            specialized.error <= generic_tau,
            "specialized tau {} worse than milp tau {}",
            specialized.error,
            generic_tau
        );
        if specialized.error < generic_tau {
            prop_assert!(
                rankhow_core::verify::relies_on_gap_band(&problem, &specialized.weights),
                "specialized tau {} beat certified milp {} without witness",
                specialized.error,
                generic_tau
            );
        }
    }
}

/// Kendall tau ignores absolute displacement: when unbeatable unranked
/// tuples push every ranked tuple down, position error is forced high
/// but tau can still reach 0 by preserving relative order.
#[test]
fn tau_reaches_zero_where_position_cannot() {
    // Tuples 0 and 1 are ranked; tuples 2 and 3 dominate both on every
    // attribute, so ranks of 0 and 1 are always ≥ 3.
    let data = Dataset::from_rows(
        vec!["a".into(), "b".into()],
        vec![
            vec![2.0, 1.0],
            vec![1.0, 2.0],
            vec![9.0, 9.0],
            vec![8.0, 8.0],
        ],
    )
    .unwrap();
    let given = GivenRanking::from_positions(vec![Some(1), Some(2), None, None]).unwrap();
    let pos_p =
        OptProblem::with_tolerances(data, given, Tolerances::explicit(1e-4, 2e-4, 0.0)).unwrap();
    let tau_p = pos_p.clone().with_objective(ErrorMeasure::KendallTau);

    let pos_sol = RankHow::new().solve(&pos_p).unwrap();
    // Ranks of both ranked tuples are ≥ 3, so the error is at least
    // |1−3| + |2−3| = 3 no matter the weights.
    assert!(pos_sol.error >= 3, "both ranked tuples displaced");

    let tau_sol = RankHow::new().solve(&tau_p).unwrap();
    assert_eq!(tau_sol.error, 0, "relative order is preservable");
    assert!(tau_sol.optimal);
}

/// The top-weighted measure penalizes a displacement of the #1 tuple
/// `k` times harder than the #k tuple; the solver must prefer sparing
/// the top when it cannot spare everyone.
#[test]
fn top_weighted_spares_the_top() {
    // π = [1, 2, 3]; tuple 3 (unranked) is built so that it must beat
    // either tuple 0 or tuple 2 (its attributes straddle them), never
    // neither. Displacing tuple 2 (weight 1) is cheaper than
    // displacing tuple 0 (weight 3).
    let data = Dataset::from_rows(
        vec!["a".into(), "b".into()],
        vec![
            vec![9.0, 1.0],
            vec![5.0, 5.0],
            vec![1.0, 9.0],
            vec![4.0, 10.0],
        ],
    )
    .unwrap();
    let given = GivenRanking::from_positions(vec![Some(1), Some(2), Some(3), None]).unwrap();
    let p = OptProblem::with_tolerances(data, given, Tolerances::explicit(1e-4, 2e-4, 0.0))
        .unwrap()
        .with_objective(ErrorMeasure::TopWeighted);
    let sol = RankHow::new().solve(&p).unwrap();
    assert!(sol.optimal);
    // Tuple 0 must stay at rank 1: any solution displacing it pays ≥ 3.
    let scores = rankhow_ranking::scores_f64(p.data.features(), &sol.weights);
    assert_eq!(rankhow_ranking::rank_of_in(&scores, 0, p.tol.eps), 1);
    assert_eq!(sol.error, p.objective_value(&sol.weights));
}

/// `objective_value` must agree with the standalone measure dispatch in
/// the ranking crate for all three measures.
#[test]
fn objective_value_matches_measure_dispatch() {
    let data = Dataset::from_rows(
        vec!["a".into(), "b".into()],
        vec![
            vec![3.0, 1.0],
            vec![2.0, 2.0],
            vec![1.0, 3.0],
            vec![0.5, 0.5],
        ],
    )
    .unwrap();
    let given = GivenRanking::from_positions(vec![Some(1), Some(2), Some(3), None]).unwrap();
    let base = OptProblem::new(data, given).unwrap();
    for measure in [
        ErrorMeasure::Position,
        ErrorMeasure::KendallTau,
        ErrorMeasure::TopWeighted,
    ] {
        let p = base.clone().with_objective(measure);
        for w in [[1.0, 0.0], [0.0, 1.0], [0.4, 0.6]] {
            let direct = p.objective_value(&w);
            let via_ext = rankhow_core::extensions::evaluate_measure(&p, &w, measure);
            assert_eq!(direct, via_ext, "measure {measure:?}, w {w:?}");
        }
    }
}
