//! Engine-layer telemetry contracts: the LP-solve histogram reconciles
//! exactly with `SolverStats::lp_solves`, the flight recorder sees the
//! engine's events in order, and attaching telemetry never changes the
//! single-threaded solve (which is deterministic, so the comparison is
//! bit-for-bit).

use rankhow_core::{OptProblem, RankHow, SolverConfig};
use rankhow_data::Dataset;
use rankhow_obs::{MetricsRegistry, SolveTelemetry};
use rankhow_ranking::GivenRanking;
use std::sync::Arc;

/// A fixed instance with nonzero optimal error: deep enough to solve
/// LPs, probe batches, and improve the incumbent more than once.
fn probe_problem() -> OptProblem {
    let data = Dataset::from_rows(
        vec!["a".into(), "b".into(), "c".into()],
        vec![
            vec![3.0, 2.0, 8.0],
            vec![4.0, 1.0, 15.0],
            vec![1.0, 7.0, 14.0],
            vec![2.0, 3.0, 9.0],
            vec![6.0, 5.0, 2.0],
        ],
    )
    .unwrap();
    let given = GivenRanking::from_positions(vec![Some(3), Some(1), None, Some(2), None]).unwrap();
    OptProblem::new(data, given).unwrap()
}

fn telemetry() -> Arc<SolveTelemetry> {
    Arc::new(
        SolveTelemetry::new(Arc::new(MetricsRegistry::new()))
            .with_recorder(4096)
            .with_phase_sample(1),
    )
}

#[test]
fn lp_histogram_count_reconciles_with_lp_solves() {
    let problem = probe_problem();
    let tel = telemetry();
    let sol = RankHow::with_config(SolverConfig {
        threads: 1,
        telemetry: Some(Arc::clone(&tel)),
        ..SolverConfig::default()
    })
    .solve(&problem)
    .expect("feasible instance");
    assert!(sol.optimal);
    assert!(sol.stats.lp_solves > 0, "instance must exercise the LP");

    if !rankhow_obs::ENABLED {
        // obs-off: the handle is ignored and nothing records.
        assert_eq!(tel.metrics.lp_solve.snapshot().count, 0);
        return;
    }
    // The invariant every instrumentation site preserves: one histogram
    // entry per `lp_solves` increment (the batched Phase B sweep spreads
    // its elapsed time over its probe count).
    assert_eq!(
        tel.metrics.lp_solve.snapshot().count,
        sol.stats.lp_solves as u64,
        "lp_solve histogram must reconcile with SolverStats::lp_solves"
    );
    assert_eq!(
        tel.metrics.probe_sweep.snapshot().count,
        sol.stats.batched_sweeps as u64,
        "one probe_sweep entry per batched sweep"
    );
    assert!(
        tel.metrics.slice.snapshot().count >= 1,
        "steps record slices"
    );
    if sol.stats.batched_sweeps > 0 {
        // phase_sample = 1: every batched tighten records its phases.
        assert!(tel.metrics.tighten_a.snapshot().count > 0);
        assert!(tel.metrics.tighten_c.snapshot().count > 0);
    }
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn flight_recorder_sees_the_engine_events_in_order() {
    let problem = probe_problem();
    let tel = telemetry();
    let sol = RankHow::with_config(SolverConfig {
        threads: 1,
        telemetry: Some(Arc::clone(&tel)),
        ..SolverConfig::default()
    })
    .solve(&problem)
    .expect("feasible instance");

    let trace = tel.recorder.as_ref().expect("recorder attached").drain("t");
    assert_eq!(trace.dropped, 0, "4096 events is plenty for this instance");
    let names: Vec<&str> = trace.events.iter().map(|e| e.event.name()).collect();
    assert_eq!(
        names.iter().filter(|n| **n == "root_init").count(),
        1,
        "exactly one root initialization"
    );
    assert_eq!(
        names.iter().filter(|n| **n == "incumbent").count(),
        sol.stats.incumbents,
        "one incumbent event per improvement (threads = 1 is deterministic)"
    );
    assert_eq!(
        names.iter().filter(|n| **n == "probe_sweep").count(),
        sol.stats.batched_sweeps
    );
    let starts = names.iter().filter(|n| **n == "slice_start").count();
    let ends = names.iter().filter(|n| **n == "slice_end").count();
    assert!(starts >= 1);
    assert_eq!(starts, ends, "every started slice ends");
    // Sequence numbers and timestamps are monotone.
    assert!(trace.events.windows(2).all(|w| w[0].seq < w[1].seq));
    assert!(trace.events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    // Slice nodes sum to the node count the engine reports.
    let nodes: u64 = trace
        .events
        .iter()
        .filter_map(|e| match e.event {
            rankhow_obs::Event::SliceEnd { nodes, .. } => Some(nodes),
            _ => None,
        })
        .sum();
    assert_eq!(nodes, sol.stats.nodes as u64, "slices account every node");
}

#[test]
fn telemetry_never_changes_the_single_threaded_solve() {
    let problem = probe_problem();
    let solve = |telemetry| {
        RankHow::with_config(SolverConfig {
            threads: 1,
            telemetry,
            ..SolverConfig::default()
        })
        .solve(&problem)
        .expect("feasible instance")
    };
    let plain = solve(None);
    let observed = solve(Some(telemetry()));
    // threads = 1 explores deterministically, so "never influences the
    // search" is checkable bit-for-bit, not just bracket overlap.
    assert_eq!(observed.weights, plain.weights);
    assert_eq!(observed.error, plain.error);
    assert_eq!(observed.optimal, plain.optimal);
    assert_eq!(observed.certified_error, plain.certified_error);
    assert_eq!(observed.certified_weights, plain.certified_weights);
    assert_eq!(observed.stats.nodes, plain.stats.nodes);
    assert_eq!(observed.stats.lp_solves, plain.stats.lp_solves);
    assert_eq!(observed.stats.incumbents, plain.stats.incumbents);
}
