//! Cross-validation of the three independent OPT solvers:
//!
//! 1. the specialized branch-and-bound (`RankHow`),
//! 2. the literal Equation (2) big-M MILP (`build_milp` + `rankhow-milp`),
//! 3. the arrangement-tree enumeration (`rankhow-baselines::tree`).
//!
//! All three must report the same optimal error on random small
//! instances — they share no solving code beyond the LP layer, so
//! agreement is strong evidence each is correct.

use proptest::prelude::*;
use rankhow_baselines::tree::{self, TreeConfig};
use rankhow_baselines::Instance;
use rankhow_core::formulation::{build_milp, reduce_global};
use rankhow_core::{OptProblem, RankHow, SatSearch, SymGd, SymGdConfig, Tolerances};
use rankhow_data::Dataset;
use rankhow_milp::MilpStatus;
use rankhow_ranking::GivenRanking;

/// A small random instance: ≤ 6 tuples, 2–3 attributes, k ≤ 3.
#[derive(Debug, Clone)]
struct SmallInstance {
    rows: Vec<Vec<f64>>,
    k: usize,
    perm_seed: u64,
}

fn small_instance() -> impl Strategy<Value = SmallInstance> {
    (3usize..6, 2usize..4, 1usize..4, any::<u64>()).prop_flat_map(|(n, m, k, perm_seed)| {
        let k = k.min(n - 1);
        prop::collection::vec(prop::collection::vec(0.0..10.0f64, m), n)
            .prop_map(move |rows| SmallInstance { rows, k, perm_seed })
    })
}

fn build_problem(inst: &SmallInstance) -> Option<OptProblem> {
    let n = inst.rows.len();
    let m = inst.rows[0].len();
    // A "given" ranking from a pseudo-random permutation: positions that
    // are NOT realizable by any linear function force nonzero optima —
    // exactly what distinguishes the solvers.
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = inst.perm_seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    let mut positions = vec![None; n];
    for (pos, &idx) in order.iter().take(inst.k).enumerate() {
        positions[idx] = Some(pos as u32 + 1);
    }
    let data =
        Dataset::from_rows((0..m).map(|j| format!("A{j}")).collect(), inst.rows.clone()).ok()?;
    let given = GivenRanking::from_positions(positions).ok()?;
    // ε well above LP solver noise (the paper's own prescription —
    // Section V-A): optima that require score ties become robust,
    // full-measure events instead of exact-equality coin flips.
    OptProblem::with_tolerances(data, given, Tolerances::explicit(1e-4, 2e-4, 0.0)).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rankhow_matches_generic_milp(inst in small_instance()) {
        let Some(problem) = build_problem(&inst) else { return Ok(()); };
        let specialized = RankHow::new().solve(&problem).unwrap();
        prop_assert!(specialized.optimal);

        let sys = reduce_global(&problem);
        let (milp, layout) = build_milp(&problem, &sys);
        let generic = milp.solve().unwrap();
        prop_assert_eq!(generic.status, MilpStatus::Optimal);
        let w: Vec<f64> = layout.w.iter().map(|&v| generic.x[v]).collect();
        let generic_err = problem.evaluate(&w);

        // The MILP objective value and the verified error of its weights
        // must agree. The specialized solver optimizes the same certified
        // space, so it can never be worse; it can be strictly *better*
        // only through an incumbent in the uncertified (ε2, ε1) band
        // (Section V-A false negatives) — in that case the weights must
        // exhibit a band pair as a witness.
        prop_assert!((generic.objective - generic_err as f64).abs() < 1e-4,
            "milp objective {} inconsistent with verified {}", generic.objective, generic_err);
        prop_assert!(
            specialized.error <= generic_err,
            "specialized {} worse than milp-verified {}",
            specialized.error, generic_err
        );
        if specialized.error < generic_err {
            prop_assert!(
                rankhow_core::verify::relies_on_gap_band(&problem, &specialized.weights),
                "specialized {} beat certified milp {} without a gap-band witness",
                specialized.error, generic_err
            );
        }
    }

    #[test]
    fn rankhow_matches_tree(inst in small_instance()) {
        let Some(problem) = build_problem(&inst) else { return Ok(()); };
        let specialized = RankHow::new().solve(&problem).unwrap();
        let binst = Instance::new(problem.data.features(), &problem.given, problem.tol);
        let tree = tree::fit(&binst, &TreeConfig {
            node_limit: 0,
            use_dominance: true,
            ..TreeConfig::default()
        });
        prop_assert!(tree.completed, "tree must finish on tiny instances");
        prop_assert!(specialized.optimal, "tiny instances must be proved");
        let tree_err = tree.fitted.map(|f| f.error).unwrap_or(u64::MAX);
        // TREE enumerates every certified arrangement cell; the
        // branch-and-bound proof covers the same space, so it can never
        // report worse. Strictly better requires an incumbent in the
        // uncertified (ε2, ε1) band — demand the witness.
        prop_assert!(
            specialized.error <= tree_err,
            "specialized {} worse than exhaustive tree {}",
            specialized.error, tree_err
        );
        if specialized.error < tree_err {
            prop_assert!(
                rankhow_core::verify::relies_on_gap_band(&problem, &specialized.weights),
                "specialized {} beat tree {} without a gap-band witness",
                specialized.error, tree_err
            );
        }
        // Either way both claims must verify exactly.
        prop_assert!(
            rankhow_core::verify::verify_claim(&problem, &specialized.weights, specialized.error)
        );
    }

    #[test]
    fn satsearch_matches_generic_milp(inst in small_instance()) {
        let Some(problem) = build_problem(&inst) else { return Ok(()); };
        let sat = SatSearch::new().solve(&problem).unwrap();
        prop_assert!(sat.optimal);

        let sys = reduce_global(&problem);
        let (milp, layout) = build_milp(&problem, &sys);
        let generic = milp.solve().unwrap();
        prop_assert_eq!(generic.status, MilpStatus::Optimal);
        let w: Vec<f64> = layout.w.iter().map(|&v| generic.x[v]).collect();
        let generic_err = problem.evaluate(&w);

        // Both optimize the certified space; the binary search's initial
        // seed is evaluated under true Definition 2 semantics, so it can
        // start from (and keep) a gap-band point — same witness rule.
        prop_assert!(
            sat.error <= generic_err,
            "satsearch {} worse than milp {}",
            sat.error, generic_err
        );
        if sat.error < generic_err {
            prop_assert!(
                rankhow_core::verify::relies_on_gap_band(&problem, &sat.weights),
                "satsearch {} beat certified milp {} without witness",
                sat.error, generic_err
            );
        }
        prop_assert!(
            rankhow_core::verify::verify_claim(&problem, &sat.weights, sat.error)
        );
    }

    #[test]
    fn symgd_never_beats_exact_optimum(inst in small_instance()) {
        let Some(problem) = build_problem(&inst) else { return Ok(()); };
        let exact = RankHow::new().solve(&problem).unwrap();
        let m = problem.m();
        let symgd = SymGd::with_config(SymGdConfig {
            cell_size: 0.5,
            adaptive: true,
            max_iterations: 20,
            total_time: Some(std::time::Duration::from_secs(10)),
            ..SymGdConfig::default()
        })
        .solve(&problem, &vec![1.0 / m as f64; m])
        .unwrap();
        // SYM-GD is a heuristic over the same objective: it can equal a
        // proved optimum but beat it only via the uncertified (ε2, ε1)
        // band that the optimality proof excludes (Section V-A).
        if symgd.error < exact.error {
            prop_assert!(
                rankhow_core::verify::relies_on_gap_band(&problem, &symgd.weights),
                "symgd {} beat proved optimum {} without a gap-band witness",
                symgd.error, exact.error
            );
        }
    }

    #[test]
    fn position_windows_always_honored(inst in small_instance(), displacement in 1u32..3) {
        let Some(problem) = build_problem(&inst) else { return Ok(()); };
        let banded = problem
            .clone()
            .with_positions(
                rankhow_core::PositionConstraints::none()
                    .max_displacement(&problem.given, displacement),
            )
            .unwrap();
        match RankHow::new().solve(&banded) {
            Ok(sol) => {
                // Every constrained tuple's realized rank stays inside
                // its window, and the error is ≥ the unconstrained one.
                let scores = rankhow_ranking::scores_f64(banded.data.features(), &sol.weights);
                for &t in banded.given.top_k() {
                    let r = rankhow_ranking::rank_of_in(&scores, t, banded.tol.eps);
                    let pi = banded.given.position(t).unwrap();
                    prop_assert!(
                        (pi as i64 - r as i64).unsigned_abs() <= displacement as u64,
                        "tuple {t}: rank {r}, π {pi}, band ±{displacement}"
                    );
                }
                let free = RankHow::new().solve(&problem).unwrap();
                if free.optimal && sol.optimal {
                    prop_assert!(sol.error >= free.error);
                }
            }
            Err(rankhow_core::SolverError::Infeasible) => {} // valid outcome
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
    }

    #[test]
    fn solution_weights_always_verify(inst in small_instance()) {
        let Some(problem) = build_problem(&inst) else { return Ok(()); };
        let sol = RankHow::new().solve(&problem).unwrap();
        // Section V-A acceptance: the claimed error matches the exact
        // rational-arithmetic error (no false positives).
        prop_assert!(rankhow_core::verify::verify_claim(&problem, &sol.weights, sol.error),
            "claimed {} failed exact verification", sol.error);
    }
}

/// Regression: an instance whose *unique* optimum (error 1) requires an
/// exact score tie between tuples 0 and 1 — any non-tie weight vector
/// errs by ≥ 2. At ε = 0 the tie needs `diff·w == 0` exactly, which a
/// floating-point LP hits only by luck (this is the paper's Section V-A
/// motivation for ε > numerical noise, and the Table III "TREE cannot
/// sample ties" remark). With ε = 10⁻⁴ the tie becomes a robust event
/// and every solver must find error 1.
#[test]
fn tie_optimum_needs_positive_eps() {
    let rows = vec![
        vec![0.0, 4.072691633313059],
        vec![3.883259038541297, 0.0],
        vec![8.078431929629708, 1.9429997436452406],
    ];
    let data = Dataset::from_rows(vec!["A0".into(), "A1".into()], rows).unwrap();
    // π: tuple 1 first, tuple 0 second, tuple 2 unranked — but tuple 2
    // dominates tuple 1, so rank(t1) ≥ 2 always: error ≥ 1 is forced.
    let given = GivenRanking::from_positions(vec![Some(2), Some(1), None]).unwrap();

    let robust = OptProblem::with_tolerances(
        data.clone(),
        given.clone(),
        Tolerances::explicit(1e-4, 2e-4, 0.0),
    )
    .unwrap();
    let sol = RankHow::new().solve(&robust).unwrap();
    assert_eq!(sol.error, 1, "robust ε finds the tie optimum");
    assert!(sol.optimal);
    // TREE agrees under the same evaluation semantics.
    let binst = Instance::new(robust.data.features(), &robust.given, robust.tol);
    let tree = tree::fit(
        &binst,
        &TreeConfig {
            node_limit: 0,
            ..TreeConfig::default()
        },
    );
    assert_eq!(tree.fitted.unwrap().error, 1);

    // At ε = 0 the solvers still terminate and report a valid error,
    // but the tie optimum may or may not be realized exactly — all we
    // can require is consistency of the claim.
    let fragile = OptProblem::with_tolerances(data, given, Tolerances::exact()).unwrap();
    let sol0 = RankHow::new().solve(&fragile).unwrap();
    assert!(sol0.error == 1 || sol0.error == 2, "error {}", sol0.error);
    assert_eq!(fragile.evaluate(&sol0.weights), sol0.error);
}
