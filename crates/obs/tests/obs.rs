//! Unit tests for the observability primitives: histogram bucket
//! geometry, merge algebra, concurrent recording, flight-recorder ring
//! semantics, and the JSON serializers (every payload must pass the
//! strict `json::validate` parser the CLI smoke tests also use).

use rankhow_obs::json;
use rankhow_obs::{Event, FlightRecorder, Histogram, MetricsRegistry, SolveTelemetry};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------- hist

#[test]
fn bucket_boundaries_are_powers_of_two() {
    // Bucket i covers [2^i, 2^(i+1)); bucket 0 also absorbs 0 ns.
    assert_eq!(Histogram::bucket_index(0), 0);
    assert_eq!(Histogram::bucket_index(1), 0);
    for k in 1..63usize {
        let edge = 1u64 << k;
        assert_eq!(Histogram::bucket_index(edge), k, "2^{k} opens bucket {k}");
        assert_eq!(
            Histogram::bucket_index(edge - 1),
            k - 1,
            "2^{k}-1 closes bucket {}",
            k - 1
        );
        assert_eq!(Histogram::bucket_floor(k), edge);
    }
    assert_eq!(Histogram::bucket_index(u64::MAX), 63);
}

#[test]
fn record_updates_count_total_min_max() {
    let h = Histogram::new();
    for ns in [5u64, 1000, 70, 5] {
        h.record_nanos(ns);
    }
    let snap = h.snapshot();
    if rankhow_obs::ENABLED {
        assert_eq!(snap.count, 4);
        assert_eq!(snap.total, 1080);
        assert_eq!(snap.min(), 5);
        assert_eq!(snap.max(), 1000);
        assert!((snap.mean() - 270.0).abs() < 1e-9);
        // Quantiles interpolate inside buckets but clamp to [min, max].
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let v = snap.quantile(q);
            assert!((5..=1000).contains(&v), "q{q} = {v} outside [min, max]");
        }
        assert_eq!(snap.quantile(1.0), 1000);
    } else {
        // obs-off: recording compiles to a no-op.
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), 0);
    }
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn empty_histogram_snapshot_is_all_zero() {
    let snap = Histogram::new().snapshot();
    assert_eq!(snap.count, 0);
    assert_eq!(
        snap.min(),
        0,
        "empty min reads 0, not the u64::MAX sentinel"
    );
    assert_eq!(snap.max(), 0);
    assert_eq!(snap.mean(), 0.0);
    assert_eq!(snap.p50(), 0);
    assert_eq!(snap.quantile(1.0), 0);
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn merge_is_associative_and_commutative() {
    let fill = |values: &[u64]| {
        let h = Histogram::new();
        for &v in values {
            h.record_nanos(v);
        }
        h
    };
    let a = fill(&[1, 2, 3, 1 << 20]);
    let b = fill(&[7, 7, 7]);
    let c = fill(&[0, u64::MAX, 1 << 40]);

    // left = (a ⊕ b) ⊕ c, right = a ⊕ (b ⊕ c), swapped = c ⊕ b ⊕ a.
    let left = Histogram::new();
    left.merge(&a);
    left.merge(&b);
    left.merge(&c);
    let bc = Histogram::new();
    bc.merge(&b);
    bc.merge(&c);
    let right = Histogram::new();
    right.merge(&a);
    right.merge(&bc);
    let swapped = Histogram::new();
    swapped.merge(&c);
    swapped.merge(&b);
    swapped.merge(&a);

    let (l, r, s) = (left.snapshot(), right.snapshot(), swapped.snapshot());
    for other in [&r, &s] {
        assert_eq!(l.buckets, other.buckets);
        assert_eq!(l.count, other.count);
        assert_eq!(l.total, other.total);
        assert_eq!(l.min(), other.min());
        assert_eq!(l.max(), other.max());
    }
    assert_eq!(l.count, 10);
    assert_eq!(l.min(), 0);
    assert_eq!(l.max(), u64::MAX);
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 5_000;
    let h = Arc::new(Histogram::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread across many buckets from every thread.
                    h.record_nanos((i % 32) * 1000 + t as u64);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS as u64 * PER_THREAD);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    let expected_total: u64 = (0..THREADS as u64)
        .map(|t| (0..PER_THREAD).map(|i| (i % 32) * 1000 + t).sum::<u64>())
        .sum();
    assert_eq!(snap.total, expected_total);
}

// ------------------------------------------------------------ recorder

#[cfg(not(feature = "obs-off"))]
#[test]
fn ring_keeps_the_newest_events_and_counts_drops() {
    let rec = FlightRecorder::new(4);
    for pool in 0..10usize {
        rec.record(Event::Placed { pool });
    }
    let trace = rec.drain("overflow");
    assert_eq!(trace.capacity, 4);
    assert_eq!(trace.dropped, 6);
    assert_eq!(trace.events.len(), 4);
    // The survivors are the last four records, in sequence order.
    let seqs: Vec<u64> = trace.events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![6, 7, 8, 9]);
    for (e, pool) in trace.events.iter().zip(6usize..) {
        assert_eq!(e.event, Event::Placed { pool });
    }
    // Timestamps are monotone in sequence order.
    assert!(trace.events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn ring_below_capacity_preserves_order_and_drops_nothing() {
    let rec = FlightRecorder::new(64);
    rec.record(Event::Admitted);
    rec.record(Event::Dequeued);
    rec.record(Event::Incumbent { error: 3.0 });
    rec.record(Event::Completed { status: "optimal" });
    let trace = rec.drain("ordered");
    assert_eq!(trace.dropped, 0);
    let seqs: Vec<u64> = trace.events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![0, 1, 2, 3]);
    let names: Vec<&str> = trace.events.iter().map(|e| e.event.name()).collect();
    assert_eq!(
        names,
        vec!["admitted", "dequeued", "incumbent", "completed"]
    );
    // Draining is non-destructive: a later drain sees the same ring.
    assert_eq!(rec.drain("again").events.len(), 4);
}

#[cfg(feature = "obs-off")]
#[test]
fn obs_off_compiles_recording_away() {
    assert!(!rankhow_obs::ENABLED);
    let h = Histogram::new();
    h.record(Duration::from_millis(5));
    assert_eq!(h.snapshot().count, 0);
    let rec = FlightRecorder::new(8);
    rec.record(Event::Admitted);
    assert!(rec.drain("noop").events.is_empty());
    let tel = SolveTelemetry::new(Arc::new(MetricsRegistry::new())).with_phase_sample(1);
    assert!(!tel.sample_phase());
}

// ------------------------------------------------------------ registry

#[cfg(not(feature = "obs-off"))]
#[test]
fn registry_merge_and_pool_gauges() {
    let a = MetricsRegistry::new();
    a.latency.record(Duration::from_millis(2));
    a.set_pool_depth(0, 3);
    a.set_pool_depth(0, 1); // last falls, max holds
    let b = MetricsRegistry::new();
    b.latency.record(Duration::from_millis(8));
    b.set_pool_depth(2, 5); // gauge vector grows on first sight
    a.merge(&b);
    assert_eq!(a.latency.snapshot().count, 2);
    let depths = a.pool_depths();
    assert_eq!(depths.len(), 3);
    assert_eq!((depths[0].last, depths[0].max), (1, 3));
    assert_eq!((depths[2].last, depths[2].max), (5, 5));
}

#[cfg(not(feature = "obs-off"))]
#[test]
fn phase_sampling_fires_every_nth_tick() {
    let tel = SolveTelemetry::new(Arc::new(MetricsRegistry::new()));
    assert!(!tel.sample_phase(), "sampling defaults off");
    let every = SolveTelemetry::new(Arc::new(MetricsRegistry::new())).with_phase_sample(1);
    assert!((0..5).all(|_| every.sample_phase()));
    let third = SolveTelemetry::new(Arc::new(MetricsRegistry::new())).with_phase_sample(3);
    let fired: Vec<bool> = (0..6).map(|_| third.sample_phase()).collect();
    assert_eq!(fired, vec![true, false, false, true, false, false]);
}

// ---------------------------------------------------------------- json

#[test]
fn serialized_payloads_pass_the_strict_parser() {
    let reg = MetricsRegistry::new();
    reg.lp_solve.record(Duration::from_micros(17));
    reg.set_pool_depth(1, 4);
    assert!(json::validate(&reg.snapshot_json()), "metrics snapshot");
    assert!(
        json::validate(&reg.lp_solve.snapshot().to_json()),
        "histogram"
    );

    let rec = FlightRecorder::new(8);
    rec.record(Event::Admitted);
    rec.record(Event::Placed { pool: 1 });
    rec.record(Event::SliceEnd { lane: 0, nodes: 64 });
    rec.record(Event::Incumbent { error: 2.0 });
    rec.record(Event::ProbeSweep { probes: 12 });
    rec.record(Event::Completed { status: "optimal" });
    assert!(
        json::validate(&rec.drain("q \"quoted\"\n").to_json()),
        "trace"
    );
}

#[test]
fn validate_rejects_malformed_json() {
    for bad in [
        "",
        "{",
        "[1,]",
        "{\"a\":}",
        "{\"a\":1,}",
        "{'a':1}",
        "nan",
        "01",
        "1 2",
        "\"unterminated",
        "{\"a\":1}trailing",
    ] {
        assert!(!json::validate(bad), "accepted malformed: {bad:?}");
    }
    for good in ["0", "-1.5e3", "null", "true", "[]", "{}", "{\"a\":[1,{}]}"] {
        assert!(json::validate(good), "rejected well-formed: {good:?}");
    }
}

#[test]
fn f64_formatting_stays_json_safe() {
    assert_eq!(json::fmt_f64(f64::NAN), "null");
    assert_eq!(json::fmt_f64(f64::INFINITY), "null");
    assert_eq!(json::fmt_f64(-0.0), "0");
    let mut obj = json::Obj::new();
    obj.field_f64("x", f64::NAN);
    obj.field_str("s", "a\"b\\c\nd");
    assert!(json::validate(&obj.finish()));
}
