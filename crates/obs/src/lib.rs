//! Solve-path observability for the rankhow serving stack.
//!
//! Three layers, all optional at two levels:
//!
//! * [`Histogram`] / [`MetricsRegistry`] — lock-free log-bucketed
//!   latency histograms and per-pool depth gauges, merge-able and
//!   snapshot-able (p50/p90/p99/max), aggregated across every query a
//!   registry is attached to.
//! * [`FlightRecorder`] / [`SolveTrace`] — a fixed-capacity ring of
//!   timestamped [`Event`]s recording one query's path through
//!   router → scheduler → engine → LP, drained into a serializable
//!   trace on join.
//! * [`json`] — a dependency-free JSON writer (and a validating parser
//!   for tests) shared by `--metrics-out`, `--trace-out`, and
//!   `--stats-json`.
//!
//! Runtime gating: a query records only when its `SolverConfig`
//! carries an `Arc<SolveTelemetry>`; the router layer additionally
//! honours `RouterConfig::telemetry`. Compile-time gating: the
//! `obs-off` cargo feature turns [`ENABLED`] const-false and every
//! recording entry point into an inlined no-op, so guarded call sites
//! fold to nothing.

pub mod hist;
pub mod json;
pub mod recorder;
pub mod registry;

pub use hist::{Histogram, HistogramSnapshot};
pub use recorder::{Event, FlightRecorder, SolveTrace, TimedEvent};
pub use registry::{MetricsRegistry, PoolDepth, SolveTelemetry};

/// Const-false under the `obs-off` cargo feature. Hot paths guard
/// telemetry lookups with `if rankhow_obs::ENABLED { .. }` so the
/// disabled build folds the whole branch away.
pub const ENABLED: bool = cfg!(not(feature = "obs-off"));
