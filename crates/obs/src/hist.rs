//! Lock-free log-bucketed latency histogram.
//!
//! 64 power-of-two nanosecond buckets: bucket `i` covers
//! `[2^i, 2^(i+1))` ns (bucket 0 also absorbs 0 ns). Recording is a
//! handful of relaxed atomic adds, so many worker threads can share
//! one histogram without contention; snapshots walk the buckets and
//! interpolate quantiles, clamped to the exact observed min/max.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// Concurrent histogram of nanosecond durations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a nanosecond value: `floor(log2(max(v, 1)))`.
    #[inline]
    pub fn bucket_index(nanos: u64) -> usize {
        nanos.max(1).ilog2() as usize
    }

    /// Inclusive lower edge of bucket `i` in nanoseconds.
    #[inline]
    pub fn bucket_floor(i: usize) -> u64 {
        1u64 << i
    }

    #[inline]
    pub fn record(&self, elapsed: Duration) {
        self.record_nanos(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    #[inline]
    pub fn record_nanos(&self, nanos: u64) {
        if !crate::ENABLED {
            return;
        }
        self.buckets[Self::bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(nanos, Ordering::Relaxed);
        self.min.fetch_min(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Fold another histogram's observations into this one. Merging is
    /// associative and commutative: bucket counts and totals add,
    /// min/max take the extremes.
    pub fn merge(&self, other: &Histogram) {
        for i in 0..BUCKETS {
            let n = other.buckets[i].load(Ordering::Relaxed);
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            total: self.total.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile estimation.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub total: u64,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) in nanoseconds by
    /// linear interpolation inside the bucket holding the target rank,
    /// clamped to the exact observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = Histogram::bucket_floor(i) as f64;
                let frac = (rank - seen) as f64 / n as f64;
                let est = (lo + lo * frac) as u64;
                return est.clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Serialize as a JSON object (counts plus the derived quantiles;
    /// schema documented in README § Observability).
    pub fn to_json(&self) -> String {
        let mut obj = crate::json::Obj::new();
        obj.field_u64("count", self.count);
        obj.field_u64("total_ns", self.total);
        obj.field_u64("min_ns", self.min());
        obj.field_u64("max_ns", self.max());
        obj.field_f64("mean_ns", self.mean());
        obj.field_u64("p50_ns", self.p50());
        obj.field_u64("p90_ns", self.p90());
        obj.field_u64("p99_ns", self.p99());
        let mut arr = crate::json::Arr::new();
        // Sparse bucket encoding: [index, count] pairs, low to high.
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                arr.push_raw(&format!("[{i},{n}]"));
            }
        }
        obj.field_raw("buckets", &arr.finish());
        obj.finish()
    }
}
