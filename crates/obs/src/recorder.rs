//! Per-query flight recorder: a fixed-capacity ring of timestamped
//! events tracing one query's path through router → scheduler →
//! engine → LP. Overflow overwrites the oldest events (the tail of a
//! long solve is usually the interesting part) and counts the drops;
//! sequence numbers stay monotone so gaps are visible in the trace.

use std::sync::Mutex;
use std::time::Instant;

use crate::json::{Arr, Obj};

/// One step on the solve path. Variants mirror the serving layers:
/// router (admitted/placed/cache/rejected), scheduler (dequeued,
/// slices), engine (root init, incumbents, probe sweeps), LP
/// (push_row, snapshot restore).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    Admitted,
    Placed {
        pool: usize,
    },
    Dequeued,
    RootInit,
    SliceStart {
        lane: usize,
    },
    SliceEnd {
        lane: usize,
        nodes: u64,
    },
    Incumbent {
        error: f64,
    },
    ProbeSweep {
        probes: u64,
    },
    PushRow,
    SnapshotRestore,
    CacheExactHit,
    CacheNearHit,
    Rejected,
    /// A worker caught a panic while stepping this query's job; the job
    /// was finalized with `SolveStatus::Failed` (best-so-far kept).
    Failed,
    /// The router re-admitted this query after a failed or refused
    /// attempt; `attempt` counts from 1.
    Retried {
        attempt: u32,
    },
    /// The scheduler worker stepping this query died and the supervisor
    /// is respawning a replacement thread.
    WorkerRespawned {
        worker: usize,
    },
    Completed {
        status: &'static str,
    },
}

impl Event {
    pub fn name(&self) -> &'static str {
        match self {
            Event::Admitted => "admitted",
            Event::Placed { .. } => "placed",
            Event::Dequeued => "dequeued",
            Event::RootInit => "root_init",
            Event::SliceStart { .. } => "slice_start",
            Event::SliceEnd { .. } => "slice_end",
            Event::Incumbent { .. } => "incumbent",
            Event::ProbeSweep { .. } => "probe_sweep",
            Event::PushRow => "push_row",
            Event::SnapshotRestore => "snapshot_restore",
            Event::CacheExactHit => "cache_exact_hit",
            Event::CacheNearHit => "cache_near_hit",
            Event::Rejected => "rejected",
            Event::Failed => "failed",
            Event::Retried { .. } => "retried",
            Event::WorkerRespawned { .. } => "worker_respawned",
            Event::Completed { .. } => "completed",
        }
    }
}

/// An [`Event`] stamped with its ring sequence number and nanoseconds
/// since the recorder's epoch (query admission).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    pub seq: u64,
    pub at_ns: u64,
    pub event: Event,
}

impl TimedEvent {
    pub fn to_json(&self) -> String {
        let mut obj = Obj::new();
        obj.field_u64("seq", self.seq);
        obj.field_u64("at_ns", self.at_ns);
        obj.field_str("event", self.event.name());
        match self.event {
            Event::Placed { pool } => {
                obj.field_u64("pool", pool as u64);
            }
            Event::SliceStart { lane } => {
                obj.field_u64("lane", lane as u64);
            }
            Event::SliceEnd { lane, nodes } => {
                obj.field_u64("lane", lane as u64);
                obj.field_u64("nodes", nodes);
            }
            Event::Incumbent { error } => {
                obj.field_f64("error", error);
            }
            Event::ProbeSweep { probes } => {
                obj.field_u64("probes", probes);
            }
            Event::Retried { attempt } => {
                obj.field_u64("attempt", attempt as u64);
            }
            Event::WorkerRespawned { worker } => {
                obj.field_u64("worker", worker as u64);
            }
            Event::Completed { status } => {
                obj.field_str("status", status);
            }
            _ => {}
        }
        obj.finish()
    }
}

struct Ring {
    events: Vec<TimedEvent>,
    head: usize,
    next_seq: u64,
    dropped: u64,
}

/// Thread-safe fixed-capacity event ring for one query.
pub struct FlightRecorder {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            epoch: Instant::now(),
            capacity,
            ring: Mutex::new(Ring {
                events: Vec::with_capacity(capacity),
                head: 0,
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    #[inline]
    pub fn record(&self, event: Event) {
        if !crate::ENABLED {
            return;
        }
        let at_ns = self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let mut ring = rankhow_sync::lock(&self.ring);
        let seq = ring.next_seq;
        ring.next_seq += 1;
        let timed = TimedEvent { seq, at_ns, event };
        if ring.events.len() < self.capacity {
            ring.events.push(timed);
        } else {
            let head = ring.head;
            ring.events[head] = timed;
            ring.head = (head + 1) % self.capacity;
            ring.dropped += 1;
        }
    }

    /// Copy the ring out in sequence order (oldest surviving event
    /// first). Leaves the recorder usable.
    pub fn drain(&self, label: &str) -> SolveTrace {
        let ring = rankhow_sync::lock(&self.ring);
        let mut events = Vec::with_capacity(ring.events.len());
        events.extend_from_slice(&ring.events[ring.head..]);
        events.extend_from_slice(&ring.events[..ring.head]);
        SolveTrace {
            label: label.to_string(),
            capacity: self.capacity,
            dropped: ring.dropped,
            events,
        }
    }
}

/// A drained, serializable flight-recorder trace for one query.
#[derive(Debug, Clone)]
pub struct SolveTrace {
    pub label: String,
    pub capacity: usize,
    /// Events overwritten by ring overflow (their seq numbers are
    /// missing from `events`).
    pub dropped: u64,
    pub events: Vec<TimedEvent>,
}

impl SolveTrace {
    pub fn to_json(&self) -> String {
        let mut arr = Arr::new();
        for e in &self.events {
            arr.push_raw(&e.to_json());
        }
        let mut obj = Obj::new();
        obj.field_str("label", &self.label);
        obj.field_u64("capacity", self.capacity as u64);
        obj.field_u64("dropped", self.dropped);
        obj.field_raw("events", &arr.finish());
        obj.finish()
    }
}
