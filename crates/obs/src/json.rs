//! Dependency-free JSON writing, plus a validating parser for tests.
//!
//! The build is fully offline (no serde), so `--metrics-out`,
//! `--trace-out`, `--stats-json`, and the bench reporter all hand-roll
//! their JSON through [`Obj`]/[`Arr`]. [`validate`] is a strict
//! recursive-descent parser the CLI tests use to assert the emitted
//! files are well-formed without a third-party crate.

/// Incremental JSON object writer.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    pub fn new() -> Self {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(name));
        self.buf.push_str("\":");
    }

    pub fn field_u64(&mut self, name: &str, v: u64) -> &mut Self {
        self.key(name);
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn field_f64(&mut self, name: &str, v: f64) -> &mut Self {
        self.key(name);
        self.buf.push_str(&fmt_f64(v));
        self
    }

    pub fn field_bool(&mut self, name: &str, v: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    pub fn field_str(&mut self, name: &str, v: &str) -> &mut Self {
        self.key(name);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Insert a pre-serialized JSON value (nested object/array).
    pub fn field_raw(&mut self, name: &str, v: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(v);
        self
    }

    pub fn finish(&self) -> String {
        let mut out = self.buf.clone();
        out.push('}');
        out
    }
}

/// Incremental JSON array writer.
#[derive(Debug, Default)]
pub struct Arr {
    buf: String,
    first: bool,
}

impl Arr {
    pub fn new() -> Self {
        Arr {
            buf: String::from("["),
            first: true,
        }
    }

    fn sep(&mut self) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
    }

    pub fn push_raw(&mut self, v: &str) -> &mut Self {
        self.sep();
        self.buf.push_str(v);
        self
    }

    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.sep();
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.sep();
        self.buf.push_str(&fmt_f64(v));
        self
    }

    pub fn push_str(&mut self, v: &str) -> &mut Self {
        self.sep();
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    pub fn finish(&self) -> String {
        let mut out = self.buf.clone();
        out.push(']');
        out
    }
}

/// Format an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // Rust Display may print exponent-free integers ("3"), which
        // is valid JSON, but normalize "-0" to keep diffs stable.
        if s == "-0" {
            s = "0".to_string();
        }
        s
    } else {
        "null".to_string()
    }
}

/// Escape a string for embedding inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Strict well-formedness check: one JSON value, nothing trailing.
pub fn validate(s: &str) -> bool {
    let b = s.as_bytes();
    let mut pos = 0usize;
    if !value(b, &mut pos) {
        return false;
    }
    ws(b, &mut pos);
    pos == b.len()
}

fn ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> bool {
    ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => false,
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '{'
    ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        ws(b, pos);
        if b.get(*pos) != Some(&b'"') || !string(b, pos) {
            return false;
        }
        ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !value(b, pos) {
            return false;
        }
        ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '['
    ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !value(b, pos) {
            return false;
        }
        ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() - *pos < 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return false;
                        }
                        *pos += 5;
                    }
                    _ => return false,
                }
            }
            0x00..=0x1f => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| -> bool {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > s
    };
    // The integer part is "0" or a nonzero-led digit run — strict JSON
    // has no leading zeros.
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            digits(b, pos);
        }
        _ => return false,
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return false;
        }
    }
    *pos > start
}
