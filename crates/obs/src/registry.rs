//! Aggregate metrics registry and the per-query telemetry handle.
//!
//! One [`MetricsRegistry`] is shared by every query of a run; each
//! query carries an `Arc<SolveTelemetry>` in its `SolverConfig` that
//! points at the registry plus (optionally) that query's private
//! [`FlightRecorder`]. Phase-level histograms (tighten A/C, child
//! feasibility, LP load) sit behind a sampling knob so hot-path
//! overhead stays bounded.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;
use crate::json::{Arr, Obj};
use crate::recorder::{Event, FlightRecorder};

/// Last/high-water depth of one scheduler pool's queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolDepth {
    pub last: u64,
    pub max: u64,
}

/// All cross-query histograms and gauges for one serving run.
///
/// Histogram taxonomy (all values nanoseconds):
/// * `latency` — admission → completion, one entry per finished query
/// * `queue_wait` — admission → first scheduler dequeue
/// * `slice` — one node-budget slice of `SolveJob::step`
/// * `lp_solve` — every LP solve; count reconciles with
///   `SolverStats::lp_solves`
/// * `lp_load` — warm-start install / snapshot restore inside
///   `expand` (sampled)
/// * `probe_sweep` — one batched Phase B objective sweep
/// * `tighten_a` / `tighten_c` — batched tighten phases A and C
///   (sampled)
/// * `child_feas` — child feasibility checks in `expand` (sampled)
/// * `cache_lookup` — router solution-cache lookups
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    pub latency: Histogram,
    pub queue_wait: Histogram,
    pub slice: Histogram,
    pub lp_solve: Histogram,
    pub lp_load: Histogram,
    pub probe_sweep: Histogram,
    pub tighten_a: Histogram,
    pub tighten_c: Histogram,
    pub child_feas: Histogram,
    pub cache_lookup: Histogram,
    pool_depth: Mutex<Vec<PoolDepth>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the instantaneous queue depth of pool `pool` (grows the
    /// gauge vector on first sight of a pool index).
    pub fn set_pool_depth(&self, pool: usize, depth: u64) {
        if !crate::ENABLED {
            return;
        }
        let mut gauges = rankhow_sync::lock(&self.pool_depth);
        if gauges.len() <= pool {
            gauges.resize(pool + 1, PoolDepth::default());
        }
        gauges[pool].last = depth;
        gauges[pool].max = gauges[pool].max.max(depth);
    }

    pub fn pool_depths(&self) -> Vec<PoolDepth> {
        rankhow_sync::lock(&self.pool_depth).clone()
    }

    fn histograms(&self) -> [(&'static str, &Histogram); 10] {
        [
            ("latency", &self.latency),
            ("queue_wait", &self.queue_wait),
            ("slice", &self.slice),
            ("lp_solve", &self.lp_solve),
            ("lp_load", &self.lp_load),
            ("probe_sweep", &self.probe_sweep),
            ("tighten_a", &self.tighten_a),
            ("tighten_c", &self.tighten_c),
            ("child_feas", &self.child_feas),
            ("cache_lookup", &self.cache_lookup),
        ]
    }

    /// Fold another registry's observations into this one.
    pub fn merge(&self, other: &MetricsRegistry) {
        for ((_, a), (_, b)) in self.histograms().into_iter().zip(other.histograms()) {
            a.merge(b);
        }
        for (pool, depth) in other.pool_depths().into_iter().enumerate() {
            if depth.last == 0 && depth.max == 0 {
                // A default entry: `other`'s gauge vector grew past a
                // pool it never sighted — don't clobber ours with it.
                continue;
            }
            let mut gauges = rankhow_sync::lock(&self.pool_depth);
            if gauges.len() <= pool {
                gauges.resize(pool + 1, PoolDepth::default());
            }
            gauges[pool].last = depth.last;
            gauges[pool].max = gauges[pool].max.max(depth.max);
        }
    }

    /// Serialize every histogram snapshot plus the pool-depth gauges
    /// as one JSON object (the `--metrics-out` payload).
    pub fn snapshot_json(&self) -> String {
        let mut hists = Obj::new();
        for (name, h) in self.histograms() {
            hists.field_raw(name, &h.snapshot().to_json());
        }
        let mut pools = Arr::new();
        for (i, g) in self.pool_depths().into_iter().enumerate() {
            let mut p = Obj::new();
            p.field_u64("pool", i as u64);
            p.field_u64("last_depth", g.last);
            p.field_u64("max_depth", g.max);
            pools.push_raw(&p.finish());
        }
        let mut obj = Obj::new();
        obj.field_raw("histograms", &hists.finish());
        obj.field_raw("pool_depth", &pools.finish());
        obj.finish()
    }
}

/// Per-query telemetry handle carried in `SolverConfig::telemetry`
/// (and consulted by the scheduler and router layers). Holds the
/// shared registry, this query's optional flight recorder, and the
/// phase-sampling knob.
#[derive(Debug)]
pub struct SolveTelemetry {
    pub metrics: Arc<MetricsRegistry>,
    pub recorder: Option<Arc<FlightRecorder>>,
    phase_sample: u64,
    tick: AtomicU64,
}

impl SolveTelemetry {
    pub fn new(metrics: Arc<MetricsRegistry>) -> Self {
        SolveTelemetry {
            metrics,
            recorder: None,
            phase_sample: 0,
            tick: AtomicU64::new(0),
        }
    }

    /// Attach a private flight recorder with the given ring capacity.
    pub fn with_recorder(mut self, capacity: usize) -> Self {
        self.recorder = Some(Arc::new(FlightRecorder::new(capacity)));
        self
    }

    /// Enable phase profiling: record the detailed engine-phase
    /// histograms on every `n`-th sampling opportunity (0 = off).
    pub fn with_phase_sample(mut self, n: u64) -> Self {
        self.phase_sample = n;
        self
    }

    /// Record an event on this query's flight recorder, if any.
    #[inline]
    pub fn event(&self, event: Event) {
        if !crate::ENABLED {
            return;
        }
        if let Some(rec) = &self.recorder {
            rec.record(event);
        }
    }

    /// Returns true when this call lands on a phase-profiling sample.
    /// Each call advances the sampling tick.
    #[inline]
    pub fn sample_phase(&self) -> bool {
        if !crate::ENABLED || self.phase_sample == 0 {
            return false;
        }
        self.tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.phase_sample)
    }
}
