//! Columnar (SoA) feature storage with batched scoring kernels.
//!
//! The solver stack scores `n` tuples against a weight vector far more
//! often than it touches individual rows, and a score sweep is a linear
//! combination of *columns*: `score = Σ_j w_j · A_j`. Storing the
//! relation column-major keeps every such sweep a sequence of contiguous
//! axpy passes — one streaming read per attribute — instead of `n`
//! strided gathers over row objects. Row access is still available
//! (strided), but the hot paths are the columnar kernels below.

use crate::kernels;
use std::fmt;

/// A dense `n × m` feature matrix stored column-major: column `j`
/// occupies `data[j·n .. (j+1)·n]`, so element `(i, j)` sits at
/// `data[j·n + i]` (the row stride is `n`).
#[derive(Clone, PartialEq)]
pub struct FeatureMatrix {
    n: usize,
    m: usize,
    data: Vec<f64>,
}

impl FeatureMatrix {
    /// All-zeros matrix.
    pub fn zeros(n: usize, m: usize) -> Self {
        FeatureMatrix {
            n,
            m,
            data: vec![0.0; n * m],
        }
    }

    /// Build from row-major nested rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        let m = rows.first().map_or(0, |r| r.len());
        let mut data = vec![0.0; n * m];
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), m, "ragged feature rows");
            for (j, &v) in row.iter().enumerate() {
                data[j * n + i] = v;
            }
        }
        FeatureMatrix { n, m, data }
    }

    /// Build from `m` columns of equal length. Panics on ragged input.
    pub fn from_columns(columns: Vec<Vec<f64>>) -> Self {
        let m = columns.len();
        let n = columns.first().map_or(0, |c| c.len());
        let mut data = Vec::with_capacity(n * m);
        for col in &columns {
            assert_eq!(col.len(), n, "ragged feature columns");
            data.extend_from_slice(col);
        }
        FeatureMatrix { n, m, data }
    }

    /// Number of tuples (rows) `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of attributes (columns) `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The stride between consecutive elements of one row (equals
    /// [`FeatureMatrix::n`] in this layout).
    pub fn stride(&self) -> usize {
        self.n
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.m);
        self.data[j * self.n + i]
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.n..(j + 1) * self.n]
    }

    /// Mutable column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.n..(j + 1) * self.n]
    }

    /// Iterate the values of row `i` (strided walk over the columns).
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = f64> + '_ {
        debug_assert!(i < self.n);
        self.data.iter().skip(i).step_by(self.n.max(1)).copied()
    }

    /// Gather row `i` into `out` (length `m`).
    pub fn copy_row_into(&self, i: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.m, "row gather arity");
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.data[j * self.n + i];
        }
    }

    /// Row `i` as an owned vector.
    pub fn row_vec(&self, i: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.m];
        self.copy_row_into(i, &mut out);
        out
    }

    /// Export as row-major nested rows (for interop with row-oriented
    /// code such as least-squares design matrices).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n).map(|i| self.row_vec(i)).collect()
    }

    /// Dot product of row `i` with `weights` (strided gather — prefer
    /// [`FeatureMatrix::scores_into`] when all rows are needed).
    pub fn dot_row(&self, i: usize, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.m, "weight arity");
        weights
            .iter()
            .enumerate()
            .map(|(j, &w)| w * self.data[j * self.n + i])
            .sum()
    }

    /// Batched score kernel: `out[i] = Σ_j weights[j] · A_j[i]` for every
    /// tuple, as `m` contiguous chunked [`kernels::axpy`] passes. Zero
    /// weights are skipped, so sparse weight vectors cost only their
    /// support. Bit-identical to the scalar accumulation (axpy is an
    /// elementwise kernel — see the `kernels` exactness contract).
    pub fn scores_into(&self, weights: &[f64], out: &mut [f64]) {
        assert_eq!(weights.len(), self.m, "weight arity");
        assert_eq!(out.len(), self.n, "score buffer length");
        out.fill(0.0);
        for (j, &w) in weights.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            kernels::axpy(out, w, self.col(j));
        }
    }

    /// Batched score kernel returning a fresh vector.
    pub fn scores(&self, weights: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.scores_into(weights, &mut out);
        out
    }

    /// Difference vector of two rows: `out[j] = A_j[s] − A_j[r]` (the
    /// indicator-hyperplane normal of the pair `(s, r)`).
    pub fn row_diff_into(&self, s: usize, r: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.m, "diff arity");
        for (j, o) in out.iter_mut().enumerate() {
            let col = &self.data[j * self.n..];
            *o = col[s] - col[r];
        }
    }

    /// Batched pair-difference kernel: for a block of challenger rows
    /// `block`, write the difference vectors against row `r` into `out`
    /// row-major (`out[b·m + j] = A_j[block[b]] − A_j[r]`). Filled one
    /// column at a time so each source column is read contiguously once.
    pub fn block_diffs_into(&self, block: &[usize], r: usize, out: &mut [f64]) {
        assert!(out.len() >= block.len() * self.m, "diff block size");
        let m = self.m;
        for j in 0..m {
            let col = self.col(j);
            let base = col[r];
            // 4-lane chunked gather/subtract/scatter with a scalar tail
            // (elementwise — bit-identical to the scalar loop). The
            // gather indices come from `block`; the subtraction is the
            // lane-parallel part.
            let mut bc = block.chunks_exact(kernels::LANES);
            let mut b = 0usize;
            for ss in &mut bc {
                let d = [
                    col[ss[0]] - base,
                    col[ss[1]] - base,
                    col[ss[2]] - base,
                    col[ss[3]] - base,
                ];
                out[b * m + j] = d[0];
                out[(b + 1) * m + j] = d[1];
                out[(b + 2) * m + j] = d[2];
                out[(b + 3) * m + j] = d[3];
                b += kernels::LANES;
            }
            for &s in bc.remainder() {
                out[b * m + j] = col[s] - base;
                b += 1;
            }
        }
    }

    /// Project onto a subset of columns (by index, in the given order).
    pub fn select_columns(&self, cols: &[usize]) -> FeatureMatrix {
        let mut data = Vec::with_capacity(self.n * cols.len());
        for &j in cols {
            data.extend_from_slice(self.col(j));
        }
        FeatureMatrix {
            n: self.n,
            m: cols.len(),
            data,
        }
    }

    /// Keep only the first `n` rows.
    pub fn take_rows(&self, n: usize) -> FeatureMatrix {
        let keep = n.min(self.n);
        let mut data = Vec::with_capacity(keep * self.m);
        for j in 0..self.m {
            data.extend_from_slice(&self.col(j)[..keep]);
        }
        FeatureMatrix {
            n: keep,
            m: self.m,
            data,
        }
    }

    /// Keep the rows at the given indices, in order.
    pub fn select_rows(&self, idx: &[usize]) -> FeatureMatrix {
        let mut data = Vec::with_capacity(idx.len() * self.m);
        for j in 0..self.m {
            let col = self.col(j);
            data.extend(idx.iter().map(|&i| col[i]));
        }
        FeatureMatrix {
            n: idx.len(),
            m: self.m,
            data,
        }
    }

    /// Append a column. Panics on a length mismatch.
    pub fn push_column(&mut self, col: Vec<f64>) {
        if self.m == 0 {
            self.n = col.len();
        }
        assert_eq!(col.len(), self.n, "column length");
        self.data.extend_from_slice(&col);
        self.m += 1;
    }

    /// Per-column `(min, max)` spans written into `out` (cleared and
    /// refilled; the buffer's capacity is reused across calls, so a
    /// caller that sweeps ranges repeatedly pays no per-call
    /// allocation). One contiguous chunked [`kernels::min_max`] pass
    /// per column.
    pub fn column_ranges_into(&self, out: &mut Vec<(f64, f64)>) {
        out.clear();
        out.reserve(self.m);
        for j in 0..self.m {
            out.push(kernels::min_max(self.col(j)));
        }
    }

    /// Per-column `(min, max)` spans as a fresh vector (allocating
    /// convenience wrapper over [`FeatureMatrix::column_ranges_into`]).
    pub fn column_ranges(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        self.column_ranges_into(&mut out);
        out
    }

    /// Min-max normalize every column to `[0, 1]` (constant columns
    /// become all-zero).
    pub fn min_max_normalized(&self) -> FeatureMatrix {
        let mut ranges = Vec::new();
        self.column_ranges_into(&mut ranges);
        let mut out = self.clone();
        for (j, (lo, hi)) in ranges.into_iter().enumerate() {
            let span = hi - lo;
            let col = out.col_mut(j);
            if span > 0.0 {
                for v in col.iter_mut() {
                    *v = (*v - lo) / span;
                }
            } else {
                col.fill(0.0);
            }
        }
        out
    }
}

impl fmt::Debug for FeatureMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FeatureMatrix {}x{} (column-major) [", self.n, self.m)?;
        for i in 0..self.n {
            writeln!(f, "  {:?}", self.row_vec(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureMatrix {
        FeatureMatrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
            vec![10.0, 11.0, 12.0],
        ])
    }

    #[test]
    fn layout_is_column_major() {
        let f = sample();
        assert_eq!(f.n(), 4);
        assert_eq!(f.m(), 3);
        assert_eq!(f.stride(), 4);
        assert_eq!(f.col(0), &[1.0, 4.0, 7.0, 10.0]);
        assert_eq!(f.col(2), &[3.0, 6.0, 9.0, 12.0]);
        assert_eq!(f.get(1, 2), 6.0);
    }

    #[test]
    fn row_access_round_trips() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let f = FeatureMatrix::from_rows(&rows);
        assert_eq!(f.to_rows(), rows);
        assert_eq!(f.row_vec(1), vec![3.0, 4.0]);
        assert_eq!(f.row_iter(2).collect::<Vec<_>>(), vec![5.0, 6.0]);
    }

    #[test]
    fn from_columns_matches_from_rows() {
        let by_rows = FeatureMatrix::from_rows(&[vec![1.0, 3.0], vec![2.0, 4.0]]);
        let by_cols = FeatureMatrix::from_columns(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(by_rows, by_cols);
    }

    #[test]
    fn batched_scores_match_rowwise_dots() {
        let f = sample();
        let w = [0.5, -1.0, 0.25];
        let batched = f.scores(&w);
        for i in 0..f.n() {
            let dot = f.dot_row(i, &w);
            assert!((batched[i] - dot).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn zero_weights_are_skipped_but_exact() {
        let f = sample();
        assert_eq!(f.scores(&[0.0, 1.0, 0.0]), f.col(1).to_vec());
    }

    #[test]
    fn row_diff_and_block_diffs_agree() {
        let f = sample();
        let mut single = vec![0.0; 3];
        f.row_diff_into(2, 0, &mut single);
        assert_eq!(single, vec![6.0, 6.0, 6.0]);
        let block = [1usize, 2, 3];
        let mut out = vec![0.0; block.len() * f.m()];
        f.block_diffs_into(&block, 0, &mut out);
        for (b, &s) in block.iter().enumerate() {
            let mut expect = vec![0.0; 3];
            f.row_diff_into(s, 0, &mut expect);
            assert_eq!(&out[b * 3..(b + 1) * 3], &expect[..], "block row {b}");
        }
    }

    #[test]
    fn selection_and_truncation() {
        let f = sample();
        let cols = f.select_columns(&[2, 0]);
        assert_eq!(cols.row_vec(1), vec![6.0, 4.0]);
        let top = f.take_rows(2);
        assert_eq!(top.n(), 2);
        assert_eq!(top.col(1), &[2.0, 5.0]);
        let picked = f.select_rows(&[3, 0]);
        assert_eq!(picked.row_vec(0), vec![10.0, 11.0, 12.0]);
        assert_eq!(picked.row_vec(1), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn push_column_extends_m() {
        let mut f = sample();
        f.push_column(vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(f.m(), 4);
        assert_eq!(f.col(3), &[0.1, 0.2, 0.3, 0.4]);
    }

    #[test]
    fn normalization_per_column() {
        let f = FeatureMatrix::from_rows(&[vec![1.0, 7.0], vec![2.0, 7.0], vec![3.0, 7.0]]);
        let n = f.min_max_normalized();
        assert_eq!(n.col(0), &[0.0, 0.5, 1.0]);
        assert_eq!(n.col(1), &[0.0, 0.0, 0.0]); // constant column
    }

    #[test]
    fn column_ranges_into_reuses_the_buffer_and_matches() {
        let f = sample();
        let mut buf = vec![(9.9, 9.9); 16]; // stale content must be cleared
        f.column_ranges_into(&mut buf);
        assert_eq!(buf, f.column_ranges());
        assert_eq!(buf, vec![(1.0, 10.0), (2.0, 11.0), (3.0, 12.0)]);
        // A second call refills in place (same answer, no stale tail).
        f.column_ranges_into(&mut buf);
        assert_eq!(buf.len(), f.m());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        FeatureMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
