//! Linear solves and least squares.

use crate::Matrix;
use std::fmt;

/// Errors from linear solves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The system matrix is singular (or numerically so).
    Singular,
    /// Dimension mismatch between operands.
    DimensionMismatch,
    /// An iterative routine failed to converge.
    NoConvergence,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "singular matrix"),
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
            LinalgError::NoConvergence => write!(f, "iteration did not converge"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solve `A x = b` with partial-pivot Gaussian elimination.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let (pivot_row, pivot_abs) = (col..n)
            .map(|r| (r, m[(r, col)].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .unwrap();
        if pivot_abs < 1e-12 {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot_row, j)];
                m[(pivot_row, j)] = tmp;
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m[(col, col)];
        for r in col + 1..n {
            let factor = m[(r, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                let v = m[(col, j)];
                m[(r, j)] -= factor * v;
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = rhs[i];
        for j in i + 1..n {
            s -= m[(i, j)] * x[j];
        }
        x[i] = s / m[(i, i)];
    }
    Ok(x)
}

/// Ordinary least squares: minimize `‖A x − y‖₂`.
///
/// Solved via the normal equations `AᵀA x = Aᵀ y`; on (near-)singular
/// Gram matrices a tiny ridge term is added and the solve retried, which
/// mirrors what scikit-learn's default pipeline effectively tolerates in
/// the paper's LINEAR REGRESSION baseline.
pub fn lstsq(a: &Matrix, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if y.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch);
    }
    let gram = a.gram();
    let rhs = a.t_matvec(y);
    match lu_solve(&gram, &rhs) {
        Ok(x) => Ok(x),
        Err(LinalgError::Singular) => {
            let mut ridged = gram;
            let scale = (0..ridged.rows())
                .map(|i| ridged[(i, i)].abs())
                .fold(0.0f64, f64::max)
                .max(1.0);
            for i in 0..ridged.rows() {
                ridged[(i, i)] += 1e-8 * scale;
            }
            lu_solve(&ridged, &rhs)
        }
        Err(e) => Err(e),
    }
}

/// Lawson–Hanson non-negative least squares:
/// minimize `‖A x − y‖₂` subject to `x ≥ 0`.
pub fn nnls(a: &Matrix, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if y.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch);
    }
    let n = a.cols();
    let mut x = vec![0.0; n];
    let mut passive = vec![false; n];
    let max_outer = 3 * n + 30;

    for _ in 0..max_outer {
        // Gradient of the active-set dual: w = Aᵀ(y − A x).
        let resid: Vec<f64> = a
            .matvec(&x)
            .iter()
            .zip(y)
            .map(|(pred, obs)| obs - pred)
            .collect();
        let w = a.t_matvec(&resid);
        // Pick the most violated active constraint.
        let candidate = (0..n)
            .filter(|&j| !passive[j])
            .max_by(|&i, &j| w[i].total_cmp(&w[j]));
        let Some(j_star) = candidate else { break };
        if w[j_star] <= 1e-10 {
            break; // KKT satisfied.
        }
        passive[j_star] = true;

        // Inner loop: solve unconstrained on the passive set, trimming
        // variables that would go negative.
        loop {
            let idx: Vec<usize> = (0..n).filter(|&j| passive[j]).collect();
            let z = solve_subproblem(a, y, &idx)?;
            if z.iter().all(|&v| v > 0.0) {
                for (slot, &v) in idx.iter().zip(&z) {
                    x[*slot] = v;
                }
                break;
            }
            // Step toward z as far as feasibility allows.
            let mut alpha = f64::INFINITY;
            for (pos, &slot) in idx.iter().enumerate() {
                if z[pos] <= 0.0 {
                    let denom = x[slot] - z[pos];
                    if denom > 0.0 {
                        alpha = alpha.min(x[slot] / denom);
                    }
                }
            }
            if !alpha.is_finite() {
                alpha = 0.0;
            }
            for (pos, &slot) in idx.iter().enumerate() {
                x[slot] += alpha * (z[pos] - x[slot]);
                if x[slot] <= 1e-12 {
                    x[slot] = 0.0;
                    passive[slot] = false;
                }
            }
        }
    }
    Ok(x)
}

/// OLS restricted to the columns in `idx`.
fn solve_subproblem(a: &Matrix, y: &[f64], idx: &[usize]) -> Result<Vec<f64>, LinalgError> {
    let mut sub = Matrix::zeros(a.rows(), idx.len());
    for r in 0..a.rows() {
        for (c, &j) in idx.iter().enumerate() {
            sub[(r, c)] = a[(r, j)];
        }
    }
    lstsq(&sub, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn lu_solves_known_system() {
        // 2x + y = 5; x + 3y = 10  -> x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = lu_solve(&a, &[5.0, 10.0]).unwrap();
        assert!(close(&x, &[1.0, 3.0], 1e-10));
    }

    #[test]
    fn lu_requires_pivoting() {
        // Zero on the initial pivot position.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = lu_solve(&a, &[2.0, 3.0]).unwrap();
        assert!(close(&x, &[3.0, 2.0], 1e-12));
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(lu_solve(&a, &[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn lstsq_recovers_exact_fit() {
        // y = 2*x1 - 3*x2, overdetermined but consistent.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ]);
        let y: Vec<f64> = (0..4).map(|i| 2.0 * a[(i, 0)] - 3.0 * a[(i, 1)]).collect();
        let x = lstsq(&a, &y).unwrap();
        assert!(close(&x, &[2.0, -3.0], 1e-8));
    }

    #[test]
    fn lstsq_minimizes_residual() {
        let a = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]);
        let y = [1.0, 2.0, 6.0];
        let x = lstsq(&a, &y).unwrap();
        // Mean minimizes squared error for the all-ones design.
        assert!((x[0] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn lstsq_handles_singular_with_ridge() {
        // Duplicated column -> singular Gram; the ridge fallback must
        // still return a finite solution with the right prediction.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let y = [2.0, 4.0, 6.0];
        let x = lstsq(&a, &y).unwrap();
        let pred = a.matvec(&x);
        assert!(close(&pred, &y, 1e-4));
    }

    #[test]
    fn nnls_matches_ols_when_interior() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let y = [2.0, 3.0, 5.0];
        let x = nnls(&a, &y).unwrap();
        assert!(close(&x, &[2.0, 3.0], 1e-8));
    }

    #[test]
    fn nnls_clamps_negative_coefficients() {
        // OLS solution would be [2, -3]; NNLS must zero the second.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ]);
        let y: Vec<f64> = (0..4).map(|i| 2.0 * a[(i, 0)] - 3.0 * a[(i, 1)]).collect();
        let x = nnls(&a, &y).unwrap();
        assert!(x.iter().all(|&v| v >= 0.0));
        assert_eq!(x[1], 0.0);
    }

    #[test]
    fn nnls_zero_fit_when_all_negative_target() {
        let a = Matrix::from_rows(&[vec![1.0], vec![1.0]]);
        let y = [-1.0, -2.0];
        let x = nnls(&a, &y).unwrap();
        assert_eq!(x, vec![0.0]);
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert_eq!(lu_solve(&a, &[1.0]), Err(LinalgError::DimensionMismatch));
        assert_eq!(lstsq(&a, &[1.0, 2.0]), Err(LinalgError::DimensionMismatch));
        assert_eq!(nnls(&a, &[1.0, 2.0]), Err(LinalgError::DimensionMismatch));
    }
}
