//! Batched arithmetic kernels: the f64 inner loops every layer above
//! shares (feature scoring, simplex pivoting, probe re-pricing).
//!
//! Each kernel is written as an explicitly unrolled 4-lane chunked loop
//! with a scalar tail — stable Rust, no `std::simd`, no intrinsics — so
//! the optimizer can keep the chunk body in vector registers while the
//! semantics stay fully portable. The `scalar-kernels` cargo feature
//! swaps every kernel for its one-element-at-a-time reference loop; the
//! parity suite runs under both configurations.
//!
//! # Exactness contract
//!
//! Two classes of kernel, with different reproducibility guarantees:
//!
//! - **Elementwise kernels** ([`axpy`], [`scale`], [`min_max`],
//!   [`first_below`], [`argmin_first`]) are *bit-identical* to their
//!   scalar reference: every lane performs the same arithmetic on the
//!   same element, no reduction is reassociated, and selection kernels
//!   reduce their lanes with an explicit lowest-index tie-break so the
//!   chunked scan picks exactly the element the sequential scan would.
//!   The simplex hot loops use only this class — pivot selection (and
//!   therefore node counts, proved errors, every solver answer) cannot
//!   depend on whether the chunked or scalar build ran.
//! - **Reduction kernels** ([`dot`]) fold into four independent
//!   accumulators and combine them at the end, which reassociates the
//!   sum: the result may differ from the sequential fold by a few ulps.
//!   Callers use `dot` only behind explicit tolerance margins (e.g. the
//!   engine's witness checks, with margins ≥ 1e-7).

/// Lanes per chunk. Fixed at 4 (one AVX register of f64, two SSE2
/// registers) — the layout constant the tests' ragged-length sweeps
/// are written against.
pub const LANES: usize = 4;

/// `y[i] += a * x[i]` over the common prefix of `y` and `x`.
///
/// Bit-identical to the scalar loop (elementwise; no reassociation).
/// `a = -f` reproduces `y[i] -= f * x[i]` exactly: IEEE 754 negation
/// commutes with multiplication bitwise.
#[cfg(not(feature = "scalar-kernels"))]
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    let n = y.len().min(x.len());
    let (y, x) = (&mut y[..n], &x[..n]);
    let mut yc = y.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (yy, xx) in (&mut yc).zip(&mut xc) {
        yy[0] += a * xx[0];
        yy[1] += a * xx[1];
        yy[2] += a * xx[2];
        yy[3] += a * xx[3];
    }
    for (yy, &xx) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yy += a * xx;
    }
}

/// `y[i] += a * x[i]` — scalar reference build.
#[cfg(feature = "scalar-kernels")]
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    for (yy, &xx) in y.iter_mut().zip(x) {
        *yy += a * xx;
    }
}

/// `y[i] *= a`. Bit-identical to the scalar loop.
#[cfg(not(feature = "scalar-kernels"))]
pub fn scale(y: &mut [f64], a: f64) {
    let mut yc = y.chunks_exact_mut(LANES);
    for yy in &mut yc {
        yy[0] *= a;
        yy[1] *= a;
        yy[2] *= a;
        yy[3] *= a;
    }
    for yy in yc.into_remainder() {
        *yy *= a;
    }
}

/// `y[i] *= a` — scalar reference build.
#[cfg(feature = "scalar-kernels")]
pub fn scale(y: &mut [f64], a: f64) {
    for yy in y.iter_mut() {
        *yy *= a;
    }
}

/// Dot product with four independent accumulators (reassociated — see
/// the module-level exactness contract; use only behind tolerance
/// margins). Sums over the common prefix of `a` and `b`.
#[cfg(not(feature = "scalar-kernels"))]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (aa, bb) in (&mut ac).zip(&mut bc) {
        acc[0] += aa[0] * bb[0];
        acc[1] += aa[1] * bb[1];
        acc[2] += aa[2] * bb[2];
        acc[3] += aa[3] * bb[3];
    }
    let mut tail = 0.0;
    for (&aa, &bb) in ac.remainder().iter().zip(bc.remainder()) {
        tail += aa * bb;
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3]) + tail
}

/// Dot product — scalar (sequential-fold) reference build.
#[cfg(feature = "scalar-kernels")]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Per-slice `(min, max)` in one pass. Empty input yields
/// `(inf, −inf)`. Lane-reduced min/max is value-identical to the
/// sequential fold (min/max are associative and commutative for the
/// NaN-free data the solver stores; ±0.0 compare equal either way).
#[cfg(not(feature = "scalar-kernels"))]
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    let mut lo = [f64::INFINITY; LANES];
    let mut hi = [f64::NEG_INFINITY; LANES];
    let mut xc = xs.chunks_exact(LANES);
    for xx in &mut xc {
        lo[0] = lo[0].min(xx[0]);
        lo[1] = lo[1].min(xx[1]);
        lo[2] = lo[2].min(xx[2]);
        lo[3] = lo[3].min(xx[3]);
        hi[0] = hi[0].max(xx[0]);
        hi[1] = hi[1].max(xx[1]);
        hi[2] = hi[2].max(xx[2]);
        hi[3] = hi[3].max(xx[3]);
    }
    let (mut l, mut h) = (
        lo[0].min(lo[1]).min(lo[2].min(lo[3])),
        hi[0].max(hi[1]).max(hi[2].max(hi[3])),
    );
    for &x in xc.remainder() {
        l = l.min(x);
        h = h.max(x);
    }
    (l, h)
}

/// Per-slice `(min, max)` — scalar reference build.
#[cfg(feature = "scalar-kernels")]
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    let mut l = f64::INFINITY;
    let mut h = f64::NEG_INFINITY;
    for &x in xs {
        l = l.min(x);
        h = h.max(x);
    }
    (l, h)
}

/// Index of the first element strictly below `threshold`, or `None`.
/// Chunked scan with an in-order check per chunk, so the answer is
/// bit-identical to the sequential scan (NaN entries never compare
/// below and are skipped, as in the scalar loop).
#[cfg(not(feature = "scalar-kernels"))]
pub fn first_below(xs: &[f64], threshold: f64) -> Option<usize> {
    let mut xc = xs.chunks_exact(LANES);
    let mut base = 0usize;
    for xx in &mut xc {
        // One branch per chunk in the common (no-hit) case.
        if xx[0] < threshold || xx[1] < threshold || xx[2] < threshold || xx[3] < threshold {
            for (l, &x) in xx.iter().enumerate() {
                if x < threshold {
                    return Some(base + l);
                }
            }
        }
        base += LANES;
    }
    for (l, &x) in xc.remainder().iter().enumerate() {
        if x < threshold {
            return Some(base + l);
        }
    }
    None
}

/// First index strictly below `threshold` — scalar reference build.
#[cfg(feature = "scalar-kernels")]
pub fn first_below(xs: &[f64], threshold: f64) -> Option<usize> {
    xs.iter().position(|&x| x < threshold)
}

/// First index attaining the minimum value (and that value), or `None`
/// on an empty slice. Each lane keeps the earliest strict minimum of
/// its own subsequence; the lane reduction breaks value ties toward the
/// *lower index*, so the chunked scan returns exactly the index the
/// sequential `<`-scan would. NaN entries are skipped (they are never
/// `<` nor `==` any running best); an all-NaN slice reports `+inf`,
/// which every caller's threshold check rejects — the sequential scan
/// selects nothing there either.
#[cfg(not(feature = "scalar-kernels"))]
pub fn argmin_first(xs: &[f64]) -> Option<(usize, f64)> {
    if xs.is_empty() {
        return None;
    }
    let mut best = [f64::INFINITY; LANES];
    let mut bidx = [usize::MAX; LANES];
    let mut xc = xs.chunks_exact(LANES);
    let mut base = 0usize;
    for xx in &mut xc {
        if xx[0] < best[0] {
            best[0] = xx[0];
            bidx[0] = base;
        }
        if xx[1] < best[1] {
            best[1] = xx[1];
            bidx[1] = base + 1;
        }
        if xx[2] < best[2] {
            best[2] = xx[2];
            bidx[2] = base + 2;
        }
        if xx[3] < best[3] {
            best[3] = xx[3];
            bidx[3] = base + 3;
        }
        base += LANES;
    }
    // Reduce the lanes with a lowest-index tie-break, then fold the
    // tail (whose indices are all larger, so plain strict `<` keeps the
    // sequential first-wins rule).
    let mut v = f64::INFINITY;
    let mut i = usize::MAX;
    for l in 0..LANES {
        if best[l] < v || (best[l] == v && bidx[l] < i) {
            v = best[l];
            i = bidx[l];
        }
    }
    for (l, &x) in xc.remainder().iter().enumerate() {
        if x < v {
            v = x;
            i = base + l;
        }
    }
    if i == usize::MAX {
        // All entries NaN: report the +inf sentinel at index 0, exactly
        // like a slice of +inf values would.
        return Some((0, f64::INFINITY));
    }
    Some((i, v))
}

/// First index attaining the minimum — scalar reference build.
#[cfg(feature = "scalar-kernels")]
pub fn argmin_first(xs: &[f64]) -> Option<(usize, f64)> {
    if xs.is_empty() {
        return None;
    }
    let mut v = f64::INFINITY;
    let mut i = usize::MAX;
    for (j, &x) in xs.iter().enumerate() {
        if x < v {
            v = x;
            i = j;
        }
    }
    if i == usize::MAX {
        return Some((0, f64::INFINITY));
    }
    Some((i, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // Scalar reference implementations, independent of the feature
    // flag, so the default (chunked) build is checked against the exact
    // sequential semantics and the `scalar-kernels` build degenerates
    // to a self-check.
    fn ref_axpy(y: &mut [f64], a: f64, x: &[f64]) {
        for (yy, &xx) in y.iter_mut().zip(x) {
            *yy += a * xx;
        }
    }

    fn ref_min_max(xs: &[f64]) -> (f64, f64) {
        xs.iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &x| {
                (l.min(x), h.max(x))
            })
    }

    fn ref_argmin_first(xs: &[f64]) -> Option<(usize, f64)> {
        if xs.is_empty() {
            return None;
        }
        let mut v = f64::INFINITY;
        let mut i = usize::MAX;
        for (j, &x) in xs.iter().enumerate() {
            if x < v {
                v = x;
                i = j;
            }
        }
        Some(if i == usize::MAX {
            (0, f64::INFINITY)
        } else {
            (i, v)
        })
    }

    /// Values that force ties and sign edge cases alongside ordinary
    /// magnitudes.
    fn value() -> impl Strategy<Value = f64> {
        prop_oneof![
            -100.0f64..100.0,
            Just(0.0),
            Just(-0.0),
            Just(1.0),
            Just(-1.0),
            Just(0.5),
        ]
    }

    /// Ragged lengths 0..17 exercise every tail size around the 4-lane
    /// chunk boundary (0–3 tails at 1, 2, 3, and 4 chunks).
    fn ragged(max: usize) -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(value(), 0..max)
    }

    proptest! {
        #[test]
        fn axpy_is_bit_identical_to_scalar(mut y in ragged(17), a in value()) {
            let x: Vec<f64> = y.iter().map(|v| v * 0.37 - 1.0).collect();
            let mut expect = y.clone();
            ref_axpy(&mut expect, a, &x);
            axpy(&mut y, a, &x);
            for (got, want) in y.iter().zip(&expect) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
        }

        #[test]
        fn scale_is_bit_identical_to_scalar(mut y in ragged(17), a in value()) {
            let expect: Vec<f64> = y.iter().map(|v| v * a).collect();
            scale(&mut y, a);
            for (got, want) in y.iter().zip(&expect) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
        }

        #[test]
        fn min_max_matches_sequential_fold(xs in ragged(17)) {
            let (l, h) = min_max(&xs);
            let (rl, rh) = ref_min_max(&xs);
            // Value equality (±0.0 may differ in sign between folds).
            prop_assert_eq!(l, rl);
            prop_assert_eq!(h, rh);
        }

        #[test]
        fn first_below_matches_sequential_scan(xs in ragged(17), t in value()) {
            prop_assert_eq!(first_below(&xs, t), xs.iter().position(|&x| x < t));
        }

        #[test]
        fn argmin_first_matches_sequential_scan(xs in ragged(17)) {
            let got = argmin_first(&xs);
            let want = ref_argmin_first(&xs);
            match (got, want) {
                (None, None) => {}
                (Some((gi, gv)), Some((wi, wv))) => {
                    prop_assert_eq!(gi, wi, "index diverged on {:?}", xs);
                    prop_assert_eq!(gv.to_bits(), wv.to_bits());
                }
                other => prop_assert!(false, "mismatch {:?}", other),
            }
        }

        #[test]
        fn dot_is_within_reduction_tolerance(a in ragged(17)) {
            let b: Vec<f64> = a.iter().map(|v| 1.0 - v * 0.21).collect();
            let got = dot(&a, &b);
            let want: f64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
            // Four-accumulator reassociation: a few ulps of |terms|.
            let scale: f64 = a.iter().zip(&b).map(|(&x, &y)| (x * y).abs()).sum();
            prop_assert!((got - want).abs() <= 1e-12 * scale.max(1.0),
                "dot {} vs sequential {}", got, want);
        }
    }

    #[test]
    fn ties_resolve_to_the_first_index() {
        // Equal minima in different lanes and different chunks: index 3
        // (lane 3) must beat index 4 (lane 0 of chunk 1).
        let xs = [5.0, 4.0, 3.0, 1.0, 1.0, 2.0];
        assert_eq!(argmin_first(&xs), Some((3, 1.0)));
        // And within one chunk, the earliest lane wins.
        let xs = [2.0, 1.0, 1.0, 1.0];
        assert_eq!(argmin_first(&xs), Some((1, 1.0)));
    }

    #[test]
    fn nan_entries_are_skipped_like_the_sequential_scan() {
        let xs = [f64::NAN, 2.0, f64::NAN, 1.0, 7.0];
        assert_eq!(argmin_first(&xs), Some((3, 1.0)));
        assert_eq!(first_below(&xs, 1.5), Some(3));
        let all_nan = [f64::NAN; 5];
        let (i, v) = argmin_first(&all_nan).unwrap();
        assert_eq!(i, 0);
        assert!(v.is_infinite() && v > 0.0, "all-NaN reports +inf");
        assert_eq!(first_below(&all_nan, 0.0), None);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(argmin_first(&[]), None);
        assert_eq!(first_below(&[], 0.0), None);
        let (l, h) = min_max(&[]);
        assert!(l.is_infinite() && l > 0.0 && h.is_infinite() && h < 0.0);
        let mut y: [f64; 0] = [];
        axpy(&mut y, 2.0, &[]);
        scale(&mut y, 2.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }
}
