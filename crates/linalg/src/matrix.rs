//! Row-major dense matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from nested rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged matrix rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable row slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Matrix–matrix product.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Gram matrix `AᵀA`.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += ri * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// `Aᵀ y`.
    pub fn t_matvec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "t_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let yi = y[i];
            if yi == 0.0 {
                continue;
            }
            for (o, a) in out.iter_mut().zip(self.row(i)) {
                *o += a * yi;
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_known() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let explicit = a.transpose().matmul(&a);
        let g = a.gram();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn t_matvec_matches_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let y = vec![1.0, 0.5, -1.0];
        let direct = a.t_matvec(&y);
        let via_t = a.transpose().matvec(&y);
        for (d, v) in direct.iter().zip(&via_t) {
            assert!((d - v).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
