//! Dense linear algebra substrate.
//!
//! Provides exactly what the RankHow reproduction needs and nothing more:
//! a columnar [`FeatureMatrix`] (the SoA tuple store every scoring and
//! search layer runs on, with batched dot-product kernels), a row-major
//! dense [`Matrix`], LU and Cholesky solves, ordinary least squares
//! ([`lstsq`]) and Lawson–Hanson non-negative least squares ([`nnls`]).
//! The least-squares routines back the LINEAR REGRESSION baseline (paper
//! Section VI-A and Example 3, which uses both the default and the
//! non-negative variant).

#![warn(missing_docs)]

mod features;
pub mod kernels;
mod matrix;
mod solve;

pub use features::FeatureMatrix;
pub use matrix::Matrix;
pub use solve::{lstsq, lu_solve, nnls, LinalgError};
