//! Property tests for the dense linear-algebra substrate.
//!
//! The solvers are validated against algebraic identities rather than
//! reference outputs: `A·lu_solve(A, b) = b` for well-conditioned `A`,
//! normal-equation optimality for `lstsq`, KKT-style optimality for
//! `nnls`, and structural identities for the matrix type.

use proptest::prelude::*;
use rankhow_linalg::{lstsq, lu_solve, nnls, Matrix};

/// A diagonally-dominant square matrix: comfortably invertible, so
/// round-trip identities hold to tight tolerances.
fn dominant_square(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(prop::collection::vec(-1.0..1.0f64, n), n).prop_map(move |mut rows| {
        for (i, row) in rows.iter_mut().enumerate() {
            let off: f64 = row.iter().map(|x| x.abs()).sum();
            row[i] = off + 1.0; // strict dominance
        }
        Matrix::from_rows(&rows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_round_trips(
        (a, b) in (2usize..6).prop_flat_map(|n| {
            (dominant_square(n), prop::collection::vec(-10.0..10.0f64, n))
        }),
    ) {
        let x = lu_solve(&a, &b).unwrap();
        let back = a.matvec(&x);
        for (bi, yi) in b.iter().zip(&back) {
            prop_assert!((bi - yi).abs() < 1e-8, "residual {}", (bi - yi).abs());
        }
    }

    #[test]
    fn transpose_is_involutive(
        rows in 1usize..5,
        cols in 1usize..5,
        data in prop::collection::vec(-5.0..5.0f64, 25),
    ) {
        let m = Matrix::from_rows(
            &(0..rows)
                .map(|i| data[i * cols..(i + 1) * cols].to_vec())
                .collect::<Vec<_>>(),
        );
        let tt = m.transpose().transpose();
        prop_assert_eq!(m.rows(), tt.rows());
        prop_assert_eq!(m.cols(), tt.cols());
        for i in 0..rows {
            prop_assert_eq!(m.row(i), tt.row(i));
        }
    }

    #[test]
    fn matmul_agrees_with_matvec_columns(
        n in 1usize..4,
        data_a in prop::collection::vec(-3.0..3.0f64, 16),
        data_b in prop::collection::vec(-3.0..3.0f64, 16),
    ) {
        let a = Matrix::from_rows(
            &(0..n).map(|i| data_a[i * n..(i + 1) * n].to_vec()).collect::<Vec<_>>(),
        );
        let b = Matrix::from_rows(
            &(0..n).map(|i| data_b[i * n..(i + 1) * n].to_vec()).collect::<Vec<_>>(),
        );
        let c = a.matmul(&b);
        // Column j of A·B equals A · (column j of B).
        for j in 0..n {
            let col: Vec<f64> = (0..n).map(|i| b.row(i)[j]).collect();
            let expect = a.matvec(&col);
            for i in 0..n {
                prop_assert!((c.row(i)[j] - expect[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal(
        rows in 2usize..6,
        cols in 1usize..4,
        data in prop::collection::vec(-4.0..4.0f64, 24),
    ) {
        let a = Matrix::from_rows(
            &(0..rows).map(|i| data[i * cols..(i + 1) * cols].to_vec()).collect::<Vec<_>>(),
        );
        let g = a.gram();
        prop_assert_eq!(g.rows(), cols);
        prop_assert_eq!(g.cols(), cols);
        for i in 0..cols {
            // Diagonal of AᵀA is a column's squared norm: non-negative.
            prop_assert!(g.row(i)[i] >= -1e-12);
            for j in 0..cols {
                prop_assert!((g.row(i)[j] - g.row(j)[i]).abs() < 1e-10, "symmetry");
            }
        }
    }

    #[test]
    fn lstsq_residual_is_orthogonal_to_columns(
        rows in 3usize..7,
        cols in 1usize..3,
        data in prop::collection::vec(-4.0..4.0f64, 21),
        y in prop::collection::vec(-4.0..4.0f64, 7),
    ) {
        prop_assume!(rows > cols);
        let a = Matrix::from_rows(
            &(0..rows).map(|i| data[i * cols..(i + 1) * cols].to_vec()).collect::<Vec<_>>(),
        );
        let y = &y[..rows];
        let x = lstsq(&a, y).unwrap();
        // Normal equations: Aᵀ(y − A x) ≈ 0 (allowing for the ridge
        // jitter fallback on near-singular Gram matrices).
        let ax = a.matvec(&x);
        let resid: Vec<f64> = y.iter().zip(&ax).map(|(yi, ai)| yi - ai).collect();
        let grad = a.t_matvec(&resid);
        for g in grad {
            prop_assert!(g.abs() < 1e-4, "normal-equation residual {g}");
        }
    }

    #[test]
    fn nnls_output_is_nonnegative_and_no_worse_than_zero(
        rows in 3usize..7,
        cols in 1usize..3,
        data in prop::collection::vec(-4.0..4.0f64, 21),
        y in prop::collection::vec(-4.0..4.0f64, 7),
    ) {
        prop_assume!(rows > cols);
        let a = Matrix::from_rows(
            &(0..rows).map(|i| data[i * cols..(i + 1) * cols].to_vec()).collect::<Vec<_>>(),
        );
        let y = &y[..rows];
        let x = nnls(&a, y).unwrap();
        for &xi in &x {
            prop_assert!(xi >= -1e-10, "negative coefficient {xi}");
        }
        // Objective sanity: the fit is at least as good as x = 0.
        let ax = a.matvec(&x);
        let fit: f64 = y.iter().zip(&ax).map(|(yi, ai)| (yi - ai).powi(2)).sum();
        let zero: f64 = y.iter().map(|yi| yi * yi).sum();
        prop_assert!(fit <= zero + 1e-8, "fit {fit} worse than zero {zero}");
    }

    #[test]
    fn nnls_matches_lstsq_when_unconstrained_solution_is_nonnegative(
        scale in 0.5..3.0f64,
        x0 in 0.1..2.0f64,
        x1 in 0.1..2.0f64,
    ) {
        // Build y = A x* with x* > 0 and well-conditioned A: both
        // solvers must recover x* (the constraint is inactive).
        let a = Matrix::from_rows(&[
            vec![scale, 0.2],
            vec![0.1, scale],
            vec![0.3, 0.4],
        ]);
        let x_star = [x0, x1];
        let y = a.matvec(&x_star);
        let free = lstsq(&a, &y).unwrap();
        let constrained = nnls(&a, &y).unwrap();
        for i in 0..2 {
            prop_assert!((free[i] - x_star[i]).abs() < 1e-6);
            prop_assert!((constrained[i] - x_star[i]).abs() < 1e-6);
        }
    }
}

/// `lu_solve` must reject singular systems rather than return garbage.
#[test]
fn singular_matrix_rejected() {
    let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
    assert!(lu_solve(&a, &[1.0, 1.0]).is_err());
}

/// NNLS clamps a genuinely negative unconstrained optimum to the
/// boundary (the textbook "anti-correlated regressor" case).
#[test]
fn nnls_clamps_negative_direction() {
    // y is the *negative* of the single column: best non-negative
    // coefficient is 0.
    let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
    let y = [-1.0, -2.0, -3.0];
    let x = nnls(&a, &y).unwrap();
    assert!(x[0].abs() < 1e-10, "got {}", x[0]);
}

/// Identity behaves as the multiplicative unit in both orders.
#[test]
fn identity_is_neutral() {
    let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
    let i = Matrix::identity(2);
    let left = i.matmul(&a);
    let right = a.matmul(&i);
    for r in 0..2 {
        assert_eq!(left.row(r), a.row(r));
        assert_eq!(right.row(r), a.row(r));
    }
}
