//! Property-based tests for exact arithmetic.
//!
//! These pin down the algebraic laws the verification layer relies on:
//! if any of these breaks, "exact" verification would silently lie.

use proptest::prelude::*;
use rankhow_numeric::{BigInt, BigUint, Rational};

fn small_f64() -> impl Strategy<Value = f64> {
    // Finite, moderate-magnitude doubles, including negatives and zero.
    prop_oneof![
        Just(0.0),
        -1e6..1e6f64,
        (-60i32..60).prop_map(|e| 2f64.powi(e)),
        (1u64..1 << 52, -40i32..40).prop_map(|(m, e)| m as f64 * 2f64.powi(e)),
    ]
}

proptest! {
    #[test]
    fn biguint_add_commutes(a in 0u64..u64::MAX, c in 0u64..u64::MAX) {
        let x = BigUint::from_u64(a);
        let y = BigUint::from_u64(c);
        prop_assert_eq!(&x + &y, &y + &x);
    }

    #[test]
    fn biguint_mul_matches_u128(a in 0u64..u64::MAX, c in 0u64..u64::MAX) {
        let exact = a as u128 * c as u128;
        let got = &BigUint::from_u64(a) * &BigUint::from_u64(c);
        let want = &(&BigUint::from_u64((exact >> 64) as u64) << 64u64)
            + &BigUint::from_u64(exact as u64);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn biguint_divmod_reconstructs(n in 0u64..u64::MAX, d in 1u64..u64::MAX) {
        let nn = BigUint::from_u64(n);
        let dd = BigUint::from_u64(d);
        let (q, r) = nn.divmod(&dd);
        prop_assert!(r < dd);
        prop_assert_eq!(&(&q * &dd) + &r, nn);
    }

    #[test]
    fn biguint_gcd_divides_both(a in 1u64..u64::MAX, c in 1u64..u64::MAX) {
        let x = BigUint::from_u64(a);
        let y = BigUint::from_u64(c);
        let g = x.gcd(&y);
        prop_assert!(x.divmod(&g).1.is_zero());
        prop_assert!(y.divmod(&g).1.is_zero());
        prop_assert_eq!(BigUint::from_u64(gcd_u64(a, c)), g);
    }

    #[test]
    fn bigint_ring_laws(a in -1_000_000i64..1_000_000, c in -1_000_000i64..1_000_000, e in -1000i64..1000) {
        let (x, y, z) = (BigInt::from_i64(a), BigInt::from_i64(c), BigInt::from_i64(e));
        // distributivity
        prop_assert_eq!(&(&x + &y) * &z, &(&x * &z) + &(&y * &z));
        // additive inverse
        prop_assert!((&x + &(-&x)).is_zero());
        // matches i64 semantics
        prop_assert_eq!(&x + &y, BigInt::from_i64(a + c));
        prop_assert_eq!(&x * &z, BigInt::from_i64(a * e));
    }

    #[test]
    fn rational_f64_roundtrip_is_exact(v in small_f64()) {
        let q = Rational::from_f64(v).unwrap();
        // from_f64 is lossless: re-deriving the f64 through an exact
        // comparison with another conversion must agree.
        let q2 = Rational::from_f64(v).unwrap();
        prop_assert_eq!(&q, &q2);
        // to_f64 lands back on the original double for these magnitudes.
        prop_assert_eq!(q.to_f64(), v);
    }

    #[test]
    fn rational_field_laws(
        (an, ad) in (-500i64..500, 1i64..500),
        (bn, bd) in (-500i64..500, 1i64..500),
        (cn, cd) in (-500i64..500, 1i64..500),
    ) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let c = Rational::new(cn, cd);
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a + &b) * &c, &(&a * &c) + &(&b * &c));
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a.clone());
        }
    }

    #[test]
    fn rational_order_is_total_and_matches_f64(x in small_f64(), y in small_f64()) {
        let qx = Rational::from_f64(x).unwrap();
        let qy = Rational::from_f64(y).unwrap();
        // Exact order must agree with f64 order (f64 comparison of two
        // exactly-representable values is itself exact).
        prop_assert_eq!(qx.cmp(&qy), x.partial_cmp(&y).unwrap());
    }

    #[test]
    fn rational_dot_matches_naive_exact(ws in prop::collection::vec(small_f64(), 1..6)) {
        let xs: Vec<f64> = ws.iter().map(|w| w * 0.5 + 1.0).collect();
        let dot = Rational::dot(&ws, &xs).unwrap();
        let mut naive = Rational::zero();
        for (w, x) in ws.iter().zip(&xs) {
            let p = &Rational::from_f64(*w).unwrap() * &Rational::from_f64(*x).unwrap();
            naive = &naive + &p;
        }
        prop_assert_eq!(dot, naive);
    }
}

fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}
