//! Arbitrary-precision unsigned integers.
//!
//! Little-endian `u32` limbs with `u64` intermediates. The invariant is
//! that the limb vector never has trailing zero limbs (so `0` is the empty
//! vector), which makes comparison and normalization O(1) to check.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Shl, Shr, Sub};

/// Arbitrary-precision unsigned integer (little-endian `u32` limbs).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Limbs, least significant first. No trailing zeros.
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether this is exactly one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Whether the value is even. Zero counts as even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().map_or(true, |l| l % 2 == 0)
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = vec![v as u32, (v >> 32) as u32];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Construct from raw little-endian limbs (normalizes trailing zeros).
    pub fn from_limbs(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Convert to `u64`, or `None` if the value does not fit.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | ((self.limbs[1] as u64) << 32)),
            _ => None,
        }
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 32 + (32 - top.leading_zeros() as u64),
        }
    }

    /// Bit at position `i` (little-endian).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 32) as usize;
        let off = (i % 32) as u32;
        self.limbs.get(limb).map_or(false, |l| (l >> off) & 1 == 1)
    }

    /// Number of trailing zero bits; `None` for zero.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i as u64 * 32 + l.trailing_zeros() as u64);
            }
        }
        None
    }

    fn add_assign(&mut self, other: &BigUint) {
        let mut carry = 0u64;
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        for i in 0..n {
            let b = *other.limbs.get(i).unwrap_or(&0) as u64;
            let sum = self.limbs[i] as u64 + b + carry;
            self.limbs[i] = sum as u32;
            carry = sum >> 32;
        }
        if carry != 0 {
            self.limbs.push(carry as u32);
        }
    }

    /// Subtract `other` from `self`. Panics if `other > self` — callers in
    /// this crate always order operands first.
    fn sub_assign(&mut self, other: &BigUint) {
        debug_assert!(*self >= *other, "BigUint subtraction underflow");
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let b = *other.limbs.get(i).unwrap_or(&0) as i64;
            let mut diff = self.limbs[i] as i64 - b - borrow;
            if diff < 0 {
                diff += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            self.limbs[i] = diff as u32;
        }
        assert!(borrow == 0, "BigUint subtraction underflow");
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    fn mul_impl(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    fn shl_impl(&self, sh: u64) -> BigUint {
        if self.is_zero() || sh == 0 {
            return self.clone();
        }
        let limb_shift = (sh / 32) as usize;
        let bit_shift = (sh % 32) as u32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    fn shr_impl(&self, sh: u64) -> BigUint {
        if sh == 0 {
            return self.clone();
        }
        let limb_shift = (sh / 32) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (sh % 32) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (32 - bit_shift)
                } else {
                    0
                };
                out.push((src[i] >> bit_shift) | hi);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Quotient and remainder dividing by a nonzero `u32`.
    pub fn divmod_u32(&self, d: u32) -> (BigUint, u32) {
        assert!(d != 0, "division by zero");
        let mut rem = 0u64;
        let mut q = vec![0u32; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | self.limbs[i] as u64;
            q[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        (BigUint::from_limbs(q), rem as u32)
    }

    /// Full quotient and remainder (binary long division).
    ///
    /// Operands in this crate are at most a few hundred bits (products of
    /// f64 mantissas), so the O(bits · limbs) cost is irrelevant; we trade
    /// Knuth's algorithm D for obviously-correct code.
    pub fn divmod(&self, d: &BigUint) -> (BigUint, BigUint) {
        assert!(!d.is_zero(), "division by zero");
        if self < d {
            return (BigUint::zero(), self.clone());
        }
        let shift = self.bits() - d.bits();
        let mut rem = self.clone();
        let mut q = BigUint::zero();
        for s in (0..=shift).rev() {
            let cand = d.shl_impl(s);
            if cand <= rem {
                rem.sub_assign(&cand);
                let mut bit = BigUint::one().shl_impl(s);
                bit.add_assign(&q);
                q = bit;
            }
        }
        (q, rem)
    }

    /// Greatest common divisor (binary GCD: only shifts, compares, subs).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let za = a.trailing_zeros().unwrap();
        let zb = b.trailing_zeros().unwrap();
        let common = za.min(zb);
        a = a.shr_impl(za);
        b = b.shr_impl(zb);
        loop {
            debug_assert!(!a.is_even() && !b.is_even());
            match a.cmp(&b) {
                Ordering::Equal => break,
                Ordering::Less => std::mem::swap(&mut a, &mut b),
                Ordering::Greater => {}
            }
            a.sub_assign(&b);
            if a.is_zero() {
                break;
            }
            a = a.shr_impl(a.trailing_zeros().unwrap());
        }
        b.shl_impl(common)
    }

    /// Approximate conversion to `f64` (round-to-nearest on the top bits).
    pub fn to_f64(&self) -> f64 {
        let bits = self.bits();
        if bits == 0 {
            return 0.0;
        }
        if bits <= 64 {
            return self.to_u64().unwrap() as f64;
        }
        // Take the top 64 bits and scale by the dropped exponent.
        let shift = bits - 64;
        let top = self.shr_impl(shift).to_u64().unwrap();
        top as f64 * 2f64.powi(shift as i32)
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    /// Panics if `rhs > self`.
    fn sub(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.sub_assign(rhs);
        out
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_impl(rhs)
    }
}

impl Shl<u64> for &BigUint {
    type Output = BigUint;
    fn shl(self, sh: u64) -> BigUint {
        self.shl_impl(sh)
    }
}

impl Shr<u64> for &BigUint {
    type Output = BigUint;
    fn shr(self, sh: u64) -> BigUint {
        self.shr_impl(sh)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divmod_u32(1_000_000_000);
            digits.push(r);
            cur = q;
        }
        write!(f, "{}", digits.pop().unwrap())?;
        for d in digits.iter().rev() {
            write!(f, "{d:09}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn zero_and_one_identities() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(&b(42) + &BigUint::zero(), b(42));
        assert_eq!(&b(42) * &BigUint::one(), b(42));
        assert_eq!(&b(42) * &BigUint::zero(), BigUint::zero());
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = b(u64::MAX);
        let sum = &a + &BigUint::one();
        assert_eq!(sum.bits(), 65);
        assert_eq!(&sum - &BigUint::one(), a);
    }

    #[test]
    fn sub_exact() {
        assert_eq!(&b(1000) - &b(1), b(999));
        assert_eq!(&b(1 << 33) - &b(1), b((1 << 33) - 1));
        assert_eq!(&b(7) - &b(7), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &b(1) - &b(2);
    }

    #[test]
    fn mul_matches_u128() {
        let cases = [
            (0u64, 12345u64),
            (1, u64::MAX),
            (u32::MAX as u64, u32::MAX as u64),
            (u64::MAX, u64::MAX),
            (0x1234_5678_9abc_def0, 0xfedc_ba98_7654_3210),
        ];
        for (x, y) in cases {
            let exact = x as u128 * y as u128;
            let got = &b(x) * &b(y);
            let want = &(&b((exact >> 64) as u64) << 64u64) + &b(exact as u64);
            assert_eq!(got, want, "{x} * {y}");
        }
    }

    #[test]
    fn shifts_roundtrip() {
        let a = b(0xdead_beef_cafe_f00d);
        for sh in [0u64, 1, 31, 32, 33, 63, 64, 100] {
            assert_eq!(&(&a << sh) >> sh, a, "shift {sh}");
        }
        assert_eq!(&b(0b1011) >> 2u64, b(0b10));
    }

    #[test]
    fn bits_and_bit_access() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(b(1).bits(), 1);
        assert_eq!(b(255).bits(), 8);
        assert_eq!(b(256).bits(), 9);
        let big = &b(1) << 100u64;
        assert_eq!(big.bits(), 101);
        assert!(big.bit(100));
        assert!(!big.bit(99));
    }

    #[test]
    fn divmod_small() {
        let (q, r) = b(1_000_000_007).divmod_u32(10);
        assert_eq!(q, b(100_000_000));
        assert_eq!(r, 7);
    }

    #[test]
    fn divmod_full_matches_reconstruction() {
        let cases = [
            (b(100), b(7)),
            (b(u64::MAX), b(3)),
            (&b(u64::MAX) * &b(u64::MAX), b(0xffff_ffff)),
            (&b(12345) * &b(67890), b(12345)),
            (b(5), b(10)),
        ];
        for (n, d) in cases {
            let (q, r) = n.divmod(&d);
            assert!(r < d);
            assert_eq!(&(&q * &d) + &r, n);
        }
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(17).gcd(&b(13)), b(1));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(5).gcd(&b(0)), b(5));
        assert_eq!(b(48).gcd(&b(64)), b(16));
        // gcd of large powers of two: pure shift path.
        let a = &b(1) << 100u64;
        let c = &b(1) << 77u64;
        assert_eq!(a.gcd(&c), c);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(b(2) > b(1));
        assert!(&b(1) << 32u64 > b(u32::MAX as u64));
        assert_eq!(b(7).cmp(&b(7)), Ordering::Equal);
    }

    #[test]
    fn display_decimal() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(b(1234567890123456789).to_string(), "1234567890123456789");
        let big = &b(10_000_000_000) * &b(10_000_000_000);
        assert_eq!(big.to_string(), "100000000000000000000");
    }

    #[test]
    fn to_f64_approximation() {
        assert_eq!(b(0).to_f64(), 0.0);
        assert_eq!(b(12345).to_f64(), 12345.0);
        let big = &b(1) << 80u64;
        let rel = (big.to_f64() - 2f64.powi(80)).abs() / 2f64.powi(80);
        assert!(rel < 1e-15);
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        assert_eq!(b(1).trailing_zeros(), Some(0));
        assert_eq!(b(8).trailing_zeros(), Some(3));
        assert_eq!((&b(1) << 70u64).trailing_zeros(), Some(70));
    }
}
