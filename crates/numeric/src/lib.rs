//! Exact arithmetic substrate for RankHow.
//!
//! The RankHow paper (Section V-A) requires verifying solver output with
//! *precise* arithmetic — the Java implementation uses `BigDecimal`. This
//! crate provides the Rust equivalent: arbitrary-precision integers
//! ([`BigUint`], [`BigInt`]) and exact rationals ([`Rational`]) with a
//! lossless conversion from `f64`.
//!
//! Every finite `f64` is exactly `± mantissa · 2^exponent`, so every score
//! `f_W(r) = Σ w_i · r.A_i` computed over f64 inputs has an exact rational
//! value. Comparing those exact values is how we detect the "false
//! positives" of Table III: solutions the floating-point solver believes
//! are optimal but whose induced ranking disagrees with the solver's own
//! indicator values.
//!
//! # Example
//! ```
//! use rankhow_numeric::Rational;
//!
//! let a = Rational::from_f64(0.1).unwrap();
//! let b = Rational::from_f64(0.2).unwrap();
//! let c = Rational::from_f64(0.3).unwrap();
//! // 0.1 + 0.2 != 0.3 in binary floating point, and exact arithmetic
//! // faithfully reports that:
//! assert!(&(&a + &b) != &c);
//! ```

#![warn(missing_docs)]

mod bigint;
mod biguint;
mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use rational::Rational;
