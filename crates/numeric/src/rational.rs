//! Exact rational numbers with lossless `f64` conversion.
//!
//! This is the "precise arithmetic" of the paper's Section V-A: solution
//! verification recomputes every score `f_W(r)` exactly and checks the
//! solver's indicator values against exact comparisons.

use crate::{BigInt, BigUint, Sign};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Exact rational `num / den`, always normalized: `den > 0`, gcd = 1,
/// and zero is represented as `0 / 1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigUint,
}

impl Rational {
    /// The value `0`.
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigUint::one(),
        }
    }

    /// Construct `n / d` from i64s. Panics if `d == 0`.
    pub fn new(n: i64, d: i64) -> Self {
        assert!(d != 0, "zero denominator");
        let num = BigInt::from_i64(n);
        let den = BigInt::from_i64(d);
        Self::from_bigints(num, den)
    }

    /// Construct from big numerator and denominator (normalizes).
    pub fn from_bigints(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "zero denominator");
        if num.is_zero() {
            return Rational::zero();
        }
        let sign = if num.is_negative() == den.is_negative() {
            Sign::Positive
        } else {
            Sign::Negative
        };
        let g = num.magnitude().gcd(den.magnitude());
        let n_mag = num.magnitude().divmod(&g).0;
        let d_mag = den.magnitude().divmod(&g).0;
        Rational {
            num: BigInt::from_sign_mag(sign, n_mag),
            den: d_mag,
        }
    }

    /// Construct from an integer.
    pub fn from_i64(v: i64) -> Self {
        Rational {
            num: BigInt::from_i64(v),
            den: BigUint::one(),
        }
    }

    /// Exact conversion from a finite `f64`.
    ///
    /// Every finite double is `± m · 2^e` with integer mantissa `m < 2^53`,
    /// so the conversion is lossless. Returns `None` for NaN or infinities.
    pub fn from_f64(v: f64) -> Option<Self> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Rational::zero());
        }
        let bits = v.to_bits();
        let negative = bits >> 63 == 1;
        let raw_exp = ((bits >> 52) & 0x7ff) as i64;
        let raw_frac = bits & ((1u64 << 52) - 1);
        // Normal numbers have an implicit leading 1; subnormals do not.
        let (mantissa, exp) = if raw_exp == 0 {
            (raw_frac, -1074i64)
        } else {
            (raw_frac | (1u64 << 52), raw_exp - 1075)
        };
        let sign = if negative {
            Sign::Negative
        } else {
            Sign::Positive
        };
        let num = BigInt::from_sign_mag(sign, BigUint::from_u64(mantissa));
        let r = if exp >= 0 {
            Rational {
                num: num.shl(exp as u64),
                den: BigUint::one(),
            }
        } else {
            let den = &BigUint::one() << (-exp) as u64;
            Rational::from_bigints(num, BigInt::from_sign_mag(Sign::Positive, den))
        };
        Some(r)
    }

    /// Exact parse of a decimal string: `[-]ddd[.ddd][e[±]dd]`.
    ///
    /// Unlike [`Rational::from_f64`], which is faithful to the *binary*
    /// value of a double, this is faithful to the decimal literal:
    /// `from_decimal_str("0.1") == 1/10` exactly.
    pub fn from_decimal_str(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() {
            return None;
        }
        let (mantissa_str, exp10) = match s.find(['e', 'E']) {
            Some(pos) => {
                let exp: i64 = s[pos + 1..].parse().ok()?;
                (&s[..pos], exp)
            }
            None => (s, 0i64),
        };
        let (negative, digits_str) = match mantissa_str.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (
                false,
                mantissa_str.strip_prefix('+').unwrap_or(mantissa_str),
            ),
        };
        let (int_part, frac_part) = match digits_str.split_once('.') {
            Some((i, f)) => (i, f),
            None => (digits_str, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return None;
        }
        if !int_part.bytes().all(|b| b.is_ascii_digit())
            || !frac_part.bytes().all(|b| b.is_ascii_digit())
        {
            return None;
        }
        // Value = digits(int ++ frac) · 10^(exp10 − |frac|).
        let mut mag = BigUint::zero();
        let ten = BigUint::from_u64(10);
        for b in int_part.bytes().chain(frac_part.bytes()) {
            mag = &(&mag * &ten) + &BigUint::from_u64((b - b'0') as u64);
        }
        let exponent = exp10 - frac_part.len() as i64;
        let sign = if negative {
            Sign::Negative
        } else {
            Sign::Positive
        };
        let num = BigInt::from_sign_mag(sign, mag);
        let r = if exponent >= 0 {
            let mut scale = BigInt::one();
            for _ in 0..exponent {
                scale = &scale * &BigInt::from_i64(10);
            }
            Rational::from_bigints(&num * &scale, BigInt::one())
        } else {
            let mut scale = BigInt::one();
            for _ in 0..(-exponent) {
                scale = &scale * &BigInt::from_i64(10);
            }
            Rational::from_bigints(num, scale)
        };
        Some(r)
    }

    /// Numerator (signed, normalized).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (positive, normalized).
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Whether this is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Whether this is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        let sign = self.num.sign();
        Rational {
            num: BigInt::from_sign_mag(sign, self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// Approximate conversion back to `f64`.
    ///
    /// Computed as a correctly-scaled 64-bit quotient; accurate to within
    /// a few ulps, which is ample for reporting (never for comparisons —
    /// comparisons use [`Rational::cmp`]).
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let n_bits = self.num.magnitude().bits() as i64;
        let d_bits = self.den.bits() as i64;
        // Scale numerator so that n / d lands near 2^63.
        let shift = 63 - (n_bits - d_bits);
        let (scaled, exp) = if shift >= 0 {
            (self.num.magnitude() << shift as u64, -shift)
        } else {
            (self.num.magnitude() >> (-shift) as u64, -shift)
        };
        let (q, _) = scaled.divmod(&self.den);
        // Split extreme exponents so the intermediate power of two does not
        // overflow/underflow before the final (possibly subnormal) result.
        let exp = exp as i32;
        let half = exp / 2;
        let approx = q.to_f64() * 2f64.powi(half) * 2f64.powi(exp - half);
        if self.num.is_negative() {
            -approx
        } else {
            approx
        }
    }

    /// Exact dot product `Σ w_i · x_i` of two f64 slices.
    ///
    /// This is the workhorse of exact score verification: the scoring
    /// function value `f_W(r)` computed without any rounding.
    pub fn dot(w: &[f64], x: &[f64]) -> Option<Rational> {
        assert_eq!(w.len(), x.len(), "dot: length mismatch");
        let mut acc = Rational::zero();
        for (&wi, &xi) in w.iter().zip(x) {
            if wi == 0.0 || xi == 0.0 {
                continue;
            }
            let a = Rational::from_f64(wi)?;
            let b = Rational::from_f64(xi)?;
            acc = &acc + &(&a * &b);
        }
        Some(acc)
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        // n1/d1 + n2/d2 = (n1 d2 + n2 d1) / (d1 d2), then normalize.
        let d1 = BigInt::from_sign_mag(Sign::Positive, self.den.clone());
        let d2 = BigInt::from_sign_mag(Sign::Positive, rhs.den.clone());
        let num = &(&self.num * &d2) + &(&rhs.num * &d1);
        let den = &d1 * &d2;
        Rational::from_bigints(num, den)
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self + &(-rhs)
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        let num = &self.num * &rhs.num;
        let den = BigInt::from_sign_mag(Sign::Positive, &self.den * &rhs.den);
        Rational::from_bigints(num, den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        self * &rhs.recip()
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  (b,d > 0)  <=>  a*d vs c*b
        let d1 = BigInt::from_sign_mag(Sign::Positive, self.den.clone());
        let d2 = BigInt::from_sign_mag(Sign::Positive, other.den.clone());
        (&self.num * &d2).cmp(&(&other.num * &d1))
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rational::zero());
        assert_eq!(r(6, 3).to_string(), "2");
        assert_eq!(r(-1, 3).to_string(), "-1/3");
    }

    #[test]
    fn field_operations() {
        assert_eq!(&r(1, 2) + &r(1, 3), r(5, 6));
        assert_eq!(&r(1, 2) - &r(1, 3), r(1, 6));
        assert_eq!(&r(2, 3) * &r(3, 4), r(1, 2));
        assert_eq!(&r(1, 2) / &r(1, 4), r(2, 1));
        assert_eq!(&r(1, 2) + &(-&r(1, 2)), Rational::zero());
        assert_eq!(&r(3, 7) * &r(3, 7).recip(), Rational::one());
    }

    #[test]
    fn ordering_cross_multiplied() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < Rational::zero());
        assert_eq!(r(2, 6).cmp(&r(1, 3)), Ordering::Equal);
    }

    #[test]
    fn from_f64_exact_values() {
        assert_eq!(Rational::from_f64(0.5).unwrap(), r(1, 2));
        assert_eq!(Rational::from_f64(-0.25).unwrap(), r(-1, 4));
        assert_eq!(Rational::from_f64(3.0).unwrap(), r(3, 1));
        assert_eq!(Rational::from_f64(0.0).unwrap(), Rational::zero());
        assert_eq!(Rational::from_f64(-0.0).unwrap(), Rational::zero());
        // 0.1 is NOT exactly 1/10 in binary — the conversion is faithful
        // to the f64, not to the decimal literal.
        assert_ne!(Rational::from_f64(0.1).unwrap(), r(1, 10));
    }

    #[test]
    fn from_f64_rejects_non_finite() {
        assert!(Rational::from_f64(f64::NAN).is_none());
        assert!(Rational::from_f64(f64::INFINITY).is_none());
        assert!(Rational::from_f64(f64::NEG_INFINITY).is_none());
    }

    #[test]
    fn from_f64_subnormal() {
        let tiny = f64::from_bits(1); // smallest positive subnormal
        let q = Rational::from_f64(tiny).unwrap();
        assert!(q.is_positive());
        // Exactly 2^-1074.
        let expect = Rational::from_bigints(
            BigInt::one(),
            BigInt::from_sign_mag(Sign::Positive, &BigUint::one() << 1074u64),
        );
        assert_eq!(q, expect);
    }

    #[test]
    fn to_f64_roundtrips() {
        for v in [
            0.0,
            1.0,
            -1.0,
            0.1,
            -0.375,
            12345.6789,
            1e-30,
            -9.9e20,
            f64::MIN_POSITIVE,
        ] {
            let q = Rational::from_f64(v).unwrap();
            let back = q.to_f64();
            let err = (back - v).abs();
            let tol = v.abs().max(f64::MIN_POSITIVE) * 1e-12;
            assert!(err <= tol, "{v} -> {back}");
        }
    }

    #[test]
    fn classic_float_pitfall_is_detected() {
        let a = Rational::from_f64(0.1).unwrap();
        let b = Rational::from_f64(0.2).unwrap();
        let c = Rational::from_f64(0.3).unwrap();
        let sum = &a + &b;
        assert!(sum > c, "0.1+0.2 exceeds 0.3 in f64 semantics");
    }

    #[test]
    fn exact_dot_product() {
        let w = [0.5, 0.25, 0.25];
        let x = [4.0, 8.0, 0.0];
        assert_eq!(Rational::dot(&w, &x).unwrap(), r(4, 1));
        // Associativity-order independence: exact arithmetic has no
        // cancellation error.
        let w2 = [1e16, 1.0, -1e16];
        let x2 = [1.0, 1.0, 1.0];
        assert_eq!(Rational::dot(&w2, &x2).unwrap(), Rational::one());
    }

    #[test]
    fn decimal_parsing_exact() {
        assert_eq!(Rational::from_decimal_str("0.1").unwrap(), r(1, 10));
        assert_eq!(Rational::from_decimal_str("-2.5").unwrap(), r(-5, 2));
        assert_eq!(Rational::from_decimal_str("42").unwrap(), r(42, 1));
        assert_eq!(Rational::from_decimal_str("+0.25").unwrap(), r(1, 4));
        assert_eq!(Rational::from_decimal_str("1e3").unwrap(), r(1000, 1));
        assert_eq!(Rational::from_decimal_str("1.5e-2").unwrap(), r(3, 200));
        assert_eq!(
            Rational::from_decimal_str("0.000").unwrap(),
            Rational::zero()
        );
        assert_eq!(Rational::from_decimal_str(".5").unwrap(), r(1, 2));
        assert_eq!(Rational::from_decimal_str("5.").unwrap(), r(5, 1));
    }

    #[test]
    fn decimal_parsing_rejects_garbage() {
        for bad in ["", ".", "1.2.3", "abc", "1e", "--1", "0x10", "1 2"] {
            assert!(
                Rational::from_decimal_str(bad).is_none(),
                "{bad:?} should fail"
            );
        }
    }

    #[test]
    fn decimal_vs_binary_semantics() {
        // The decimal 0.1 and the f64 0.1 are different rationals.
        let dec = Rational::from_decimal_str("0.1").unwrap();
        let bin = Rational::from_f64(0.1).unwrap();
        assert_ne!(dec, bin);
        // But they agree to within an ulp when projected to f64.
        assert_eq!(dec.to_f64(), 0.1);
    }

    #[test]
    fn abs_and_signs() {
        assert_eq!(r(-3, 4).abs(), r(3, 4));
        assert!(r(-3, 4).is_negative());
        assert!(r(3, 4).is_positive());
        assert!(!Rational::zero().is_positive());
        assert!(!Rational::zero().is_negative());
    }
}
