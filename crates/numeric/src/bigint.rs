//! Signed arbitrary-precision integers (sign + magnitude over [`BigUint`]).

use crate::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of a [`BigInt`]. Zero always has [`Sign::Zero`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// Arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Positive,
            mag: BigUint::one(),
        }
    }

    /// Construct from sign and magnitude (normalizes zero).
    pub fn from_sign_mag(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude needs a sign");
            BigInt { sign, mag }
        }
    }

    /// Construct from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt {
                sign: Sign::Positive,
                mag: BigUint::from_u64(v as u64),
            },
            Ordering::Less => BigInt {
                sign: Sign::Negative,
                mag: BigUint::from_u64(v.unsigned_abs()),
            },
        }
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            BigInt::zero()
        } else {
            BigInt {
                sign: Sign::Positive,
                mag: BigUint::from_u64(v),
            }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Whether this is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Whether this is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        if self.is_zero() {
            BigInt::zero()
        } else {
            BigInt {
                sign: Sign::Positive,
                mag: self.mag.clone(),
            }
        }
    }

    /// Greatest common divisor of magnitudes.
    pub fn gcd(&self, other: &BigInt) -> BigUint {
        self.mag.gcd(&other.mag)
    }

    /// Exact division of magnitudes (used for rational normalization).
    /// Preserves this value's sign. Panics if the division is not exact.
    pub fn div_exact_mag(&self, d: &BigUint) -> BigInt {
        if self.is_zero() {
            return BigInt::zero();
        }
        let (q, r) = self.mag.divmod(d);
        assert!(r.is_zero(), "div_exact_mag: not exact");
        BigInt::from_sign_mag(self.sign, q)
    }

    /// Multiply by a power of two.
    pub fn shl(&self, sh: u64) -> BigInt {
        if self.is_zero() {
            BigInt::zero()
        } else {
            BigInt {
                sign: self.sign,
                mag: &self.mag << sh,
            }
        }
    }

    /// Approximate conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        match self.sign {
            Sign::Negative => -m,
            Sign::Zero => 0.0,
            Sign::Positive => m,
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        match self.sign {
            Sign::Zero => BigInt::zero(),
            Sign::Positive => BigInt {
                sign: Sign::Negative,
                mag: self.mag.clone(),
            },
            Sign::Negative => BigInt {
                sign: Sign::Positive,
                mag: self.mag.clone(),
            },
        }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt {
                sign: a,
                mag: &self.mag + &rhs.mag,
            },
            _ => match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt {
                    sign: self.sign,
                    mag: &self.mag - &rhs.mag,
                },
                Ordering::Less => BigInt {
                    sign: rhs.sign,
                    mag: &rhs.mag - &self.mag,
                },
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == rhs.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt {
            sign,
            mag: &self.mag * &rhs.mag,
        }
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(s: Sign) -> i8 {
            match s {
                Sign::Negative => -1,
                Sign::Zero => 0,
                Sign::Positive => 1,
            }
        }
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Zero => Ordering::Equal,
                Sign::Positive => self.mag.cmp(&other.mag),
                Sign::Negative => other.mag.cmp(&self.mag),
            },
            ord => ord,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> BigInt {
        BigInt::from_i64(v)
    }

    #[test]
    fn construction_normalizes_zero() {
        assert!(i(0).is_zero());
        assert_eq!(i(0).sign(), Sign::Zero);
        assert_eq!(BigInt::from_sign_mag(Sign::Negative, BigUint::zero()), i(0));
    }

    #[test]
    fn signed_addition_all_sign_combinations() {
        for a in [-7i64, -1, 0, 1, 7, 100] {
            for b in [-100i64, -7, -1, 0, 1, 7] {
                assert_eq!(&i(a) + &i(b), i(a + b), "{a} + {b}");
            }
        }
    }

    #[test]
    fn signed_subtraction() {
        for a in [-50i64, -3, 0, 3, 50] {
            for b in [-50i64, -3, 0, 3, 50] {
                assert_eq!(&i(a) - &i(b), i(a - b), "{a} - {b}");
            }
        }
    }

    #[test]
    fn signed_multiplication() {
        for a in [-12i64, -1, 0, 1, 9] {
            for b in [-4i64, 0, 3] {
                assert_eq!(&i(a) * &i(b), i(a * b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn negation_is_involution() {
        for v in [-5i64, 0, 5] {
            assert_eq!(-&(-&i(v)), i(v));
        }
    }

    #[test]
    fn ordering_matches_i64() {
        let vals = [-10i64, -1, 0, 1, 10];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(i(a).cmp(&i(b)), a.cmp(&b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn display_includes_sign() {
        assert_eq!(i(-42).to_string(), "-42");
        assert_eq!(i(42).to_string(), "42");
        assert_eq!(i(0).to_string(), "0");
    }

    #[test]
    fn div_exact_and_shl() {
        let v = i(48);
        assert_eq!(v.div_exact_mag(&BigUint::from_u64(16)), i(3));
        assert_eq!(i(-48).div_exact_mag(&BigUint::from_u64(12)), i(-4));
        assert_eq!(i(3).shl(4), i(48));
        assert_eq!(i(-3).shl(1), i(-6));
    }

    #[test]
    fn to_f64_signed() {
        assert_eq!(i(-12345).to_f64(), -12345.0);
        assert_eq!(i(0).to_f64(), 0.0);
    }
}
