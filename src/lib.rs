//! # RankHow — synthesizing linear scoring functions for rankings
//!
//! Facade crate re-exporting the whole workspace. This is the crate a
//! downstream user depends on; the sub-crates can also be used directly.
//!
//! Reproduction of *"Synthesizing Scoring Functions for Rankings Using
//! Symbolic Gradient Descent"* (Chen, Manolios, Riedewald — ICDE 2025).
//!
//! ## Quickstart
//! ```
//! use rankhow::prelude::*;
//!
//! // A tiny dataset: Example 4 of the paper.
//! let data = Dataset::from_rows(
//!     vec!["A1".into(), "A2".into(), "A3".into()],
//!     vec![vec![3.0, 2.0, 8.0], vec![4.0, 1.0, 15.0], vec![1.0, 1.0, 14.0]],
//! )
//! .unwrap();
//! // Given ranking π[r, s, t] = [1, 2, ⊥].
//! let pi = GivenRanking::from_positions(vec![Some(1), Some(2), None]).unwrap();
//!
//! let problem = OptProblem::new(data, pi).unwrap();
//! let solution = RankHow::new().solve(&problem).unwrap();
//! assert_eq!(solution.error, 0); // a perfect linear function exists
//! ```

#![warn(missing_docs)]

/// Paper-to-API notation map (Table I of the paper).
///
/// | Paper symbol | Meaning | In this crate |
/// |---|---|---|
/// | `R` | input dataset | [`data::Dataset`] |
/// | `n = \|R\|` | number of tuples | [`data::Dataset::n`] |
/// | `A_1..A_m` | ranking attributes | [`data::Dataset::names`] |
/// | `f_W` | linear scoring function | weight vector `&[f64]` + [`ranking::scores_f64`] |
/// | `W = (w_1..w_m)` | weight vector | [`core::Solution::weights`] |
/// | `P` | weight predicate | [`core::WeightConstraints`] |
/// | `π` | given ranking | [`ranking::GivenRanking`] |
/// | `π(r)` | rank of `r` in `π` | [`ranking::GivenRanking::position`] |
/// | `R_π(k)` | top-k tuples of `π` | [`ranking::GivenRanking::top_k`] |
/// | `ρ_W` | score-based ranking | [`ranking::score_ranks`] |
/// | `ρ_W(r)` | rank of `r` under `f_W` | [`ranking::rank_of_in`] |
/// | `ε` | tie tolerance | [`core::Tolerances::eps`] |
/// | `τ`, `τ⁺` | precision tolerance | [`core::Tolerances::tau`] / the `from_eps_tau` recipe |
/// | `δ_sr` | pair indicator | [`core::formulation::PairH`] |
/// | `ε_1`, `ε_2` | imprecision thresholds | [`core::Tolerances::eps1`] / [`core::Tolerances::eps2`] |
pub mod notation {}

pub use rankhow_baselines as baselines;
pub use rankhow_core as core;
pub use rankhow_data as data;
pub use rankhow_linalg as linalg;
pub use rankhow_lp as lp;
pub use rankhow_milp as milp;
pub use rankhow_numeric as numeric;
pub use rankhow_obs as obs;
pub use rankhow_ranking as ranking;
pub use rankhow_router as router;
pub use rankhow_serve as serve;

/// Convenience re-exports of the types most programs need.
pub mod prelude {
    pub use rankhow_core::{
        CellScheduler, ErrorMeasure, OptProblem, PositionConstraints, RankHow, SatSearch, Solution,
        SolveStatus, SymGd, SymGdConfig, Tolerances, WeightConstraints,
    };
    pub use rankhow_data::Dataset;
    pub use rankhow_ranking::{position_error, score_ranks, GivenRanking};
    pub use rankhow_router::{Placement, Router, RouterConfig, RouterStats};
    pub use rankhow_serve::{Scheduler, SolveHandle};
}
