//! `rankhow` — command-line scoring-function synthesis.
//!
//! ```text
//! rankhow <data.csv> [--ranking <ranking.csv>] [--k <K>] [--score-col <NAME>]
//!         [--eps <E>] [--eps1 <E1>] [--eps2 <E2>]
//!         [--min-weight <ATTR>=<LO>] [--max-weight <ATTR>=<HI>]
//!         [--symgd <CELL>] [--budget <SECONDS>] [--measure position|kendall|topweighted]
//!         [--threads <N>]
//! rankhow --batch <queries.txt> [--threads <N>] [--pools <P>] [--queue-cap <N>]
//!         [--no-cache] [--cache-cap <N>]
//! ```
//!
//! Observability flags (both modes, top-level only — not inside batch
//! lines): `--stats` prints human-readable counters and latency
//! histogram summaries to stderr; `--stats-json <file>` writes the
//! solver/router/cache statistics as JSON; `--metrics-out <file>`
//! writes the metrics-registry snapshot (latency/queue-wait/LP-solve
//! histograms plus per-pool queue-depth gauges); `--trace-out <dir>`
//! attaches a flight recorder to every direct query and writes one
//! JSON trace per query into the directory (SYM-GD cell chains carry
//! no recorder — their cells are internal jobs). Schemas are
//! documented in README § Observability.
//!
//! Input: a CSV of numeric attributes (header row). The given ranking
//! comes either from `--ranking` (a one-column CSV of positions, one row
//! per tuple, empty/0 = ⊥) or from `--score-col` + `--k` (rank the top-K
//! by a score column, then drop that column from the attributes).
//!
//! `--measure` selects the objective the solver *optimizes* (not merely
//! reports): Definition 3 position error, Kendall tau, or the
//! top-weighted variant.
//!
//! `--batch <file>` streams one query per line (same grammar as the
//! single-query command line, whitespace-separated; `#` comments and
//! blank lines skipped; malformed lines are reported with their 1-based
//! line number) and solves them **concurrently** on a
//! `rankhow_router::Router` of `--pools` scheduler pools with
//! `--threads` workers each (per-line `--threads` is ignored — the
//! pools decide). `--queue-cap` bounds each pool's outstanding jobs
//! (queued + in-flight): over-capacity queries are shed with status
//! `rejected` instead of queueing without bound. The router's
//! cross-query solution cache is on by default — repeated identical
//! lines complete from the cache, and same-instance lines that differ
//! only in weight constraints warm-start from the cached root;
//! `--no-cache` disables it and `--cache-cap` bounds its entry count.
//! All four flags apply to `--batch` only. Lines with `--symgd` run as
//! warm-started cell-job chains routed through the same pools. Results
//! print in line order; with `--threads 1` the output is deterministic
//! for any `--pools`, cache on or off.
//!
//! Output: the synthesized weights, the objective value, and the exact
//! verification verdict.

use rankhow::core::{seeding, verify, Solution, SolveStatus, SolverConfig, SymGd, SymGdConfig};
use rankhow::obs::{Event, MetricsRegistry, SolveTelemetry};
use rankhow::prelude::*;
use rankhow::ranking::ErrorMeasure;
use rankhow::router::{Router, RouterConfig};
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Flight-recorder ring capacity per traced query (`--trace-out`).
/// Long solves overflow and keep the newest events; `dropped` in the
/// trace counts the overwritten prefix.
const TRACE_CAPACITY: usize = 4096;

#[derive(Clone)]
struct Args {
    data: PathBuf,
    ranking: Option<PathBuf>,
    score_col: Option<String>,
    k: usize,
    eps: f64,
    eps1: f64,
    eps2: f64,
    min_weights: Vec<(String, f64)>,
    max_weights: Vec<(String, f64)>,
    symgd_cell: Option<f64>,
    budget: u64,
    measure: ErrorMeasure,
    threads: usize,
    pools: usize,
    queue_cap: usize,
    no_cache: bool,
    cache_cap: Option<usize>,
    retries: Option<u32>,
    retry_backoff_ms: Option<u64>,
    stats: bool,
    stats_json: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    batch: Option<PathBuf>,
}

impl Args {
    /// Whether any flag asked for telemetry — the queries then carry a
    /// `SolveTelemetry` handle; otherwise `SolverConfig::telemetry`
    /// stays `None` and the instrumented paths cost nothing.
    fn wants_telemetry(&self) -> bool {
        self.stats
            || self.stats_json.is_some()
            || self.metrics_out.is_some()
            || self.trace_out.is_some()
    }

    /// Build one query's telemetry handle over the shared registry:
    /// a flight recorder when tracing, full phase sampling when the
    /// metrics snapshot or the human histogram summary was asked for.
    fn make_telemetry(&self, metrics: &Arc<MetricsRegistry>) -> Arc<SolveTelemetry> {
        let mut tel = SolveTelemetry::new(Arc::clone(metrics));
        if self.trace_out.is_some() {
            tel = tel.with_recorder(TRACE_CAPACITY);
        }
        if self.metrics_out.is_some() || self.stats {
            tel = tel.with_phase_sample(1);
        }
        Arc::new(tel)
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: rankhow <data.csv> [--ranking pos.csv | --score-col NAME] [--k K]\n\
         \x20      [--eps E] [--eps1 E1] [--eps2 E2] [--min-weight A=L] [--max-weight A=H]\n\
         \x20      [--symgd CELL] [--budget SECS] [--measure position|kendall|topweighted]\n\
         \x20      [--threads N] [--stats] [--stats-json FILE] [--metrics-out FILE]\n\
         \x20      [--trace-out DIR]\n\
         \x20      rankhow --batch queries.txt [--threads N] [--pools P] [--queue-cap N]\n\
         \x20      [--no-cache] [--cache-cap N] [--retries N] [--retry-backoff-ms N]\n\
         \x20      [--stats] [--stats-json FILE] [--metrics-out FILE] [--trace-out DIR]"
    );
    std::process::exit(2)
}

/// Parse one command line (the process arguments, or one `--batch`
/// line). Any malformed flag or value is an `Err` — the caller decides
/// how to report it (both paths exit with code 2).
fn parse_tokens(tokens: &[String], allow_batch: bool) -> Result<Args, String> {
    let mut args = Args {
        data: PathBuf::new(),
        ranking: None,
        score_col: None,
        k: 10,
        eps: 1e-6,
        eps1: 1e-4,
        eps2: 0.0,
        min_weights: Vec::new(),
        max_weights: Vec::new(),
        symgd_cell: None,
        budget: 30,
        measure: ErrorMeasure::Position,
        threads: rankhow::core::default_threads(),
        pools: 1,
        queue_cap: 0,
        no_cache: false,
        cache_cap: None,
        retries: None,
        retry_backoff_ms: None,
        stats: false,
        stats_json: None,
        metrics_out: None,
        trace_out: None,
        batch: None,
    };
    let mut it = tokens.iter();
    let mut positional = Vec::new();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let parse_f64 = |flag: &str, v: String| {
            v.parse::<f64>()
                .map_err(|_| format!("{flag}: not a number: {v}"))
        };
        match a.as_str() {
            "--ranking" => args.ranking = Some(PathBuf::from(next("--ranking")?)),
            "--score-col" => args.score_col = Some(next("--score-col")?),
            "--k" => {
                let v = next("--k")?;
                args.k = v.parse().map_err(|_| format!("--k: not a count: {v}"))?;
            }
            "--eps" => args.eps = parse_f64("--eps", next("--eps")?)?,
            "--eps1" => args.eps1 = parse_f64("--eps1", next("--eps1")?)?,
            "--eps2" => args.eps2 = parse_f64("--eps2", next("--eps2")?)?,
            "--budget" => {
                let v = next("--budget")?;
                args.budget = v
                    .parse()
                    .map_err(|_| format!("--budget: not a number of seconds: {v}"))?;
            }
            "--threads" => {
                let v = next("--threads")?;
                args.threads = v
                    .parse()
                    .map_err(|_| format!("--threads: not a count: {v}"))?;
            }
            "--pools" => {
                let v = next("--pools")?;
                args.pools = v
                    .parse()
                    .map_err(|_| format!("--pools: not a count: {v}"))?;
            }
            "--queue-cap" => {
                let v = next("--queue-cap")?;
                args.queue_cap = v
                    .parse()
                    .map_err(|_| format!("--queue-cap: not a count: {v}"))?;
            }
            "--no-cache" => args.no_cache = true,
            "--cache-cap" => {
                let v = next("--cache-cap")?;
                args.cache_cap = Some(
                    v.parse()
                        .map_err(|_| format!("--cache-cap: not a count: {v}"))?,
                );
            }
            "--retries" => {
                let v = next("--retries")?;
                args.retries = Some(
                    v.parse()
                        .map_err(|_| format!("--retries: not a count: {v}"))?,
                );
            }
            "--retry-backoff-ms" => {
                let v = next("--retry-backoff-ms")?;
                args.retry_backoff_ms = Some(
                    v.parse()
                        .map_err(|_| format!("--retry-backoff-ms: not a number of ms: {v}"))?,
                );
            }
            "--stats" => args.stats = true,
            "--stats-json" | "--metrics-out" | "--trace-out" => {
                // Output destinations are process-level: one file (or
                // directory) per run, never one per batch line.
                if !allow_batch {
                    return Err(format!("{a} cannot appear inside a batch file"));
                }
                let path = PathBuf::from(next(a)?);
                match a.as_str() {
                    "--stats-json" => args.stats_json = Some(path),
                    "--metrics-out" => args.metrics_out = Some(path),
                    _ => args.trace_out = Some(path),
                }
            }
            "--symgd" => {
                args.symgd_cell = Some(parse_f64("--symgd", next("--symgd")?)?);
            }
            "--batch" => {
                if !allow_batch {
                    return Err("--batch cannot appear inside a batch file".into());
                }
                args.batch = Some(PathBuf::from(next("--batch")?));
            }
            "--min-weight" | "--max-weight" => {
                let spec = next(a)?;
                let (attr, val) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("{a}: expected ATTR=VALUE, got {spec}"))?;
                let val = parse_f64(a, val.to_string())?;
                if a == "--min-weight" {
                    args.min_weights.push((attr.to_string(), val));
                } else {
                    args.max_weights.push((attr.to_string(), val));
                }
            }
            "--measure" => {
                args.measure = match next("--measure")?.as_str() {
                    "position" => ErrorMeasure::Position,
                    "kendall" => ErrorMeasure::KendallTau,
                    "topweighted" => ErrorMeasure::TopWeighted,
                    other => return Err(format!("--measure: unknown measure: {other}")),
                }
            }
            "--help" | "-h" => return Err("help requested".into()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag: {other}"));
            }
            other => positional.push(other.to_string()),
        }
    }
    if args.batch.is_some() {
        if !positional.is_empty() {
            return Err("--batch takes queries from the file, not the command line".into());
        }
        return Ok(args);
    }
    // Router-level flags shape the --batch serving topology; accepting
    // them silently on a single query would fake admission control.
    if args.pools != 1 {
        return Err("--pools only applies to --batch".into());
    }
    if args.queue_cap != 0 {
        return Err("--queue-cap only applies to --batch".into());
    }
    if args.no_cache {
        return Err("--no-cache only applies to --batch".into());
    }
    if args.cache_cap.is_some() {
        return Err("--cache-cap only applies to --batch".into());
    }
    if args.retries.is_some() {
        return Err("--retries only applies to --batch".into());
    }
    if args.retry_backoff_ms.is_some() {
        return Err("--retry-backoff-ms only applies to --batch".into());
    }
    if positional.len() != 1 {
        return Err("expected exactly one <data.csv> argument".into());
    }
    args.data = PathBuf::from(&positional[0]);
    Ok(args)
}

/// Build the `OptProblem` a parsed query describes.
fn build_problem(args: &Args) -> Result<OptProblem, String> {
    let mut data = Dataset::from_csv(&args.data)
        .map_err(|e| format!("error reading {}: {e}", args.data.display()))?;

    // Resolve the given ranking.
    let given = if let Some(path) = &args.ranking {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("error reading {}: {e}", path.display()))?;
        let positions: Vec<Option<u32>> = text
            .lines()
            .skip(1) // header
            .filter(|l| !l.trim().is_empty())
            .map(|l| match l.trim().parse::<u32>() {
                Ok(0) | Err(_) => None,
                Ok(p) => Some(p),
            })
            .collect();
        GivenRanking::from_positions(positions).map_err(|e| format!("invalid ranking: {e}"))?
    } else if let Some(col) = &args.score_col {
        let idx = data
            .attr_index(col)
            .ok_or_else(|| format!("no column named {col}"))?;
        let scores: Vec<f64> = data.col(idx).to_vec();
        let keep: Vec<usize> = (0..data.m()).filter(|&j| j != idx).collect();
        data = data.select_attrs(&keep);
        GivenRanking::from_scores(&scores, args.k.min(scores.len()), 0.0)
            .map_err(|e| format!("invalid ranking: {e}"))?
    } else {
        return Err("need --ranking or --score-col".into());
    };

    // Constraints.
    let mut constraints = WeightConstraints::none();
    for (attr, lo) in &args.min_weights {
        let idx = data
            .attr_index(attr)
            .ok_or_else(|| format!("no column named {attr}"))?;
        constraints = constraints.min_weight(idx, *lo);
    }
    for (attr, hi) in &args.max_weights {
        let idx = data
            .attr_index(attr)
            .ok_or_else(|| format!("no column named {attr}"))?;
        constraints = constraints.max_weight(idx, *hi);
    }

    let tol = Tolerances::explicit(args.eps, args.eps1, args.eps2);
    OptProblem::with_all(data, given, constraints, tol)
        .map(|p| p.with_objective(args.measure))
        .map_err(|e| format!("invalid problem: {e}"))
}

/// Print the per-query report (weights, objective, verification).
fn report(problem: &OptProblem, args: &Args, weights: &[f64], error: u64, optimal: bool) {
    println!("weights:");
    for (name, w) in problem.data.names().iter().zip(weights) {
        if *w > 1e-9 {
            println!("  {name:<16} {w:.6}");
        }
    }
    let label = match args.measure {
        ErrorMeasure::Position => "position error",
        ErrorMeasure::KendallTau => "kendall-tau error",
        ErrorMeasure::TopWeighted => "top-weighted error",
    };
    println!(
        "{label}: {error}{}",
        if optimal { " (proved optimal)" } else { "" }
    );
    if args.measure != ErrorMeasure::Position {
        // Also report plain Definition 3 error for comparability.
        println!("position error: {}", problem.evaluate(weights));
    }
    match verify::verify(problem, weights) {
        Some(rep) if rep.consistent => println!("exact verification: PASS"),
        Some(rep) => println!(
            "exact verification: MISMATCH (exact {}, f64 {})",
            rep.exact_error, rep.f64_error
        ),
        None => println!("exact verification: skipped (non-finite input)"),
    }
}

/// Print the search/LP telemetry a solve accumulated (`--stats`). The
/// warm/cold split and the pivot counter are the LP warm-starting
/// observability: `lp warm` regions re-installed a parent basis and
/// skipped phase 1, `pivots` is the hardware-independent LP-work meter.
fn report_stats(stats: &rankhow::core::SolverStats) {
    // `elapsed` is a per-solve property that `SolverStats::merge`
    // deliberately does not sum, so multi-job aggregates (the --batch
    // path) carry none — omit the clause rather than print "0ns".
    let elapsed = if stats.elapsed.is_zero() {
        String::new()
    } else {
        format!(" in {:.3?}", stats.elapsed)
    };
    eprintln!(
        "stats: {} nodes, {} lp solves ({} warm / {} cold starts, {} pivots), \
         {} probes skipped ({} whole coords), \
         {} probes batched ({} sweeps), \
         {} incumbents, {} live pairs, {} job(s){}",
        stats.nodes,
        stats.lp_solves,
        stats.lp_warm_starts,
        stats.lp_cold_starts,
        stats.lp_pivots,
        stats.probes_skipped,
        stats.coords_skipped,
        stats.probe_objectives_batched,
        stats.batched_sweeps,
        stats.incumbents,
        stats.live_pairs,
        stats.jobs.max(1),
        elapsed
    );
    // Cross-query cache telemetry (the --batch router path; always zero
    // on a single in-process solve, so the line is suppressed there).
    let cache_events =
        stats.cache_exact_hits + stats.cache_near_hits + stats.cache_misses + stats.cache_evictions;
    if cache_events > 0 {
        eprintln!(
            "cache: {} exact hits, {} near hits, {} misses, {} evictions",
            stats.cache_exact_hits,
            stats.cache_near_hits,
            stats.cache_misses,
            stats.cache_evictions
        );
    }
}

/// Print one summary line per non-empty latency histogram (`--stats`
/// with telemetry on): count, p50/p90/p99, max.
fn report_histograms(metrics: &MetricsRegistry) {
    let fmt = |ns: u64| format!("{:.3?}", Duration::from_nanos(ns));
    let rows = [
        ("latency", metrics.latency.snapshot()),
        ("queue wait", metrics.queue_wait.snapshot()),
        ("slice", metrics.slice.snapshot()),
        ("lp solve", metrics.lp_solve.snapshot()),
        ("lp load", metrics.lp_load.snapshot()),
        ("probe sweep", metrics.probe_sweep.snapshot()),
        ("tighten A", metrics.tighten_a.snapshot()),
        ("tighten C", metrics.tighten_c.snapshot()),
        ("child feas", metrics.child_feas.snapshot()),
        ("cache lookup", metrics.cache_lookup.snapshot()),
    ];
    for (name, snap) in rows {
        if snap.count == 0 {
            continue;
        }
        eprintln!(
            "  {name:<12} {:>8} recorded  p50 {:>9}  p90 {:>9}  p99 {:>9}  max {:>9}",
            snap.count,
            fmt(snap.p50()),
            fmt(snap.p90()),
            fmt(snap.p99()),
            fmt(snap.max())
        );
    }
}

/// Write one observability JSON payload, newline-terminated.
fn write_json(path: &Path, what: &str, json: &str) -> Result<(), String> {
    std::fs::write(path, format!("{json}\n"))
        .map_err(|e| format!("error writing {what} {}: {e}", path.display()))
}

/// Drain traced queries' flight recorders into `--trace-out`: one
/// `query-NNNN.json` per recorder, numbered in submission order.
fn write_traces<'a>(
    dir: &Path,
    traced: impl Iterator<Item = (usize, &'a SolveTelemetry, String)>,
) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("error creating trace dir {}: {e}", dir.display()))?;
    for (i, tel, label) in traced {
        let Some(recorder) = &tel.recorder else {
            continue;
        };
        let trace = recorder.drain(&label);
        let path = dir.join(format!("query-{:04}.json", i + 1));
        write_json(&path, "trace", &trace.to_json())?;
    }
    Ok(())
}

fn status_label(status: SolveStatus) -> &'static str {
    match status {
        SolveStatus::Optimal => "optimal",
        SolveStatus::NodeLimit => "node-limit",
        SolveStatus::TimeLimit => "time-limit",
        SolveStatus::Cancelled => "cancelled",
        SolveStatus::Rejected => "rejected",
        SolveStatus::Failed => "failed",
    }
}

/// One query solved on the caller's thread (the classic CLI path).
fn run_single(args: &Args) -> ExitCode {
    let problem = match build_problem(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "instance: n={}, m={}, k={}",
        problem.n(),
        problem.m(),
        problem.given.k()
    );

    // Solve. Telemetry attaches to the direct engine path only: a
    // SYM-GD chain's cell jobs are internal and carry no handle.
    let metrics = args.wants_telemetry().then(Arc::<MetricsRegistry>::default);
    let (weights, error, optimal) = if let Some(cell) = args.symgd_cell {
        let seed = seeding::ordinal_seed(&problem);
        match SymGd::with_config(SymGdConfig {
            cell_size: cell,
            adaptive: true,
            total_time: Some(Duration::from_secs(args.budget)),
            threads: args.threads,
            ..SymGdConfig::default()
        })
        .solve(&problem, &seed)
        {
            Ok(r) => {
                if args.stats {
                    eprintln!(
                        "stats: symgd {} cell jobs, {} cell growths",
                        r.iterations, r.cell_growths
                    );
                }
                if let Some(path) = &args.stats_json {
                    let mut sym = rankhow::obs::json::Obj::new();
                    sym.field_u64("iterations", r.iterations as u64);
                    sym.field_u64("cell_growths", r.cell_growths as u64);
                    let mut obj = rankhow::obs::json::Obj::new();
                    obj.field_raw("symgd", &sym.finish());
                    if let Err(msg) = write_json(path, "stats json", &obj.finish()) {
                        eprintln!("{msg}");
                        return ExitCode::FAILURE;
                    }
                }
                (r.weights, r.error, false)
            }
            Err(e) => {
                eprintln!("symgd failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let telemetry = metrics.as_ref().map(|m| args.make_telemetry(m));
        let admitted = Instant::now();
        if let Some(tel) = &telemetry {
            tel.event(Event::Admitted);
        }
        let seed = seeding::ordinal_seed(&problem);
        match RankHow::with_config(SolverConfig {
            time_limit: Some(Duration::from_secs(args.budget)),
            warm_start: Some(seed),
            threads: args.threads,
            telemetry: telemetry.clone(),
            ..SolverConfig::default()
        })
        .solve(&problem)
        {
            Ok(s) => {
                // No scheduler finalizes a single in-process solve, so
                // the CLI records the admission→completion latency
                // itself — latency.count == completed queries in both
                // modes.
                if let Some(tel) = &telemetry {
                    tel.metrics.latency.record(admitted.elapsed());
                    tel.event(Event::Completed {
                        status: status_label(s.status),
                    });
                }
                if args.stats {
                    report_stats(&s.stats);
                    if let Some(m) = &metrics {
                        report_histograms(m);
                    }
                }
                if let Some(path) = &args.stats_json {
                    let mut obj = rankhow::obs::json::Obj::new();
                    obj.field_raw("solver", &s.stats.to_json());
                    if let Err(msg) = write_json(path, "stats json", &obj.finish()) {
                        eprintln!("{msg}");
                        return ExitCode::FAILURE;
                    }
                }
                if let Some(dir) = &args.trace_out {
                    let label = args.data.display().to_string();
                    let traced = telemetry.iter().map(|tel| (0, tel.as_ref(), label.clone()));
                    if let Err(msg) = write_traces(dir, traced) {
                        eprintln!("{msg}");
                        return ExitCode::FAILURE;
                    }
                }
                (s.weights, s.error, s.optimal)
            }
            Err(e) => {
                eprintln!("solve failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if let (Some(path), Some(m)) = (&args.metrics_out, &metrics) {
        if let Err(msg) = write_json(path, "metrics", &m.snapshot_json()) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    report(&problem, args, &weights, error, optimal);
    ExitCode::SUCCESS
}

/// The outcome of one batch query, kept until all lines are printed in
/// submission order.
enum BatchOutcome {
    Direct(Solution),
    SymGd(rankhow::core::SymGdResult),
    Failed(String),
}

/// Many queries multiplexed over a router of scheduler pools.
fn run_batch(args: &Args, batch_path: &PathBuf) -> ExitCode {
    let file = match std::fs::File::open(batch_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error reading {}: {e}", batch_path.display());
            return ExitCode::FAILURE;
        }
    };
    // Stream the query file line by line — the *text* held at any time
    // is one line, not the whole file (the built problems still
    // accumulate: every query solves concurrently). A malformed line is
    // a usage error (exit 2, reported with its 1-based line number)
    // before any solving starts.
    let mut queries: Vec<(Args, Arc<OptProblem>)> = Vec::new();
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("{}:{}: read error: {e}", batch_path.display(), lineno + 1);
                return ExitCode::FAILURE;
            }
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        let query = match parse_tokens(&tokens, false) {
            Ok(q) => q,
            Err(msg) => {
                eprintln!("{}:{}: {msg}", batch_path.display(), lineno + 1);
                std::process::exit(2);
            }
        };
        match build_problem(&query) {
            Ok(p) => queries.push((query, Arc::new(p))),
            Err(msg) => {
                eprintln!("{}:{}: {msg}", batch_path.display(), lineno + 1);
                return ExitCode::FAILURE;
            }
        }
    }
    if queries.is_empty() {
        eprintln!("{}: no queries", batch_path.display());
        return ExitCode::FAILURE;
    }

    let default_config = RouterConfig::default();
    let mut retry = default_config.retry;
    if let Some(n) = args.retries {
        retry.max_retries = n;
    }
    if let Some(ms) = args.retry_backoff_ms {
        retry.backoff = Duration::from_millis(ms);
    }
    let router = Router::new(RouterConfig {
        pools: args.pools.max(1),
        threads_per_pool: args.threads.max(1),
        queue_cap: args.queue_cap,
        cache: !args.no_cache,
        cache_cap: args.cache_cap.unwrap_or(default_config.cache_cap),
        retry,
        ..default_config
    });
    eprintln!(
        "batch: {} queries on {} pool(s) x {} worker(s){}",
        queries.len(),
        router.pools(),
        args.threads.max(1),
        if args.queue_cap > 0 {
            format!(", queue cap {}", args.queue_cap)
        } else {
            String::new()
        }
    );

    // Route every direct query as a concurrent job. SYM-GD queries run
    // as concurrent cell-job chains too: a chain is sequential by
    // nature (each cell warm-starts from the previous optimum), so each
    // gets a lightweight driver thread while all the actual solving —
    // cells and direct jobs alike — multiplexes on the router's pools.
    let metrics = args.wants_telemetry().then(Arc::<MetricsRegistry>::default);
    let mut handles: Vec<Option<SolveHandle>> = Vec::with_capacity(queries.len());
    let mut telemetries: Vec<Option<Arc<SolveTelemetry>>> = Vec::with_capacity(queries.len());
    for (query, problem) in &queries {
        if query.symgd_cell.is_some() {
            // Cell-chain jobs are internal: no per-query recorder, and
            // their engine work is excluded from the shared registry.
            handles.push(None);
            telemetries.push(None);
            continue;
        }
        let telemetry = metrics.as_ref().map(|m| args.make_telemetry(m));
        let seed = seeding::ordinal_seed(problem);
        let config = SolverConfig {
            time_limit: Some(Duration::from_secs(query.budget)),
            warm_start: Some(seed),
            telemetry: telemetry.clone(),
            ..SolverConfig::default()
        };
        telemetries.push(telemetry);
        handles.push(Some(router.spawn_shared(Arc::clone(problem), config)));
    }
    let mut outcomes: Vec<Option<BatchOutcome>> = Vec::with_capacity(queries.len());
    outcomes.resize_with(queries.len(), || None);
    let sym_outcomes: Vec<(usize, BatchOutcome)> = std::thread::scope(|scope| {
        let drivers: Vec<_> = queries
            .iter()
            .enumerate()
            .filter_map(|(i, (query, problem))| {
                let cell = query.symgd_cell?;
                let router = &router;
                let budget = query.budget;
                Some(scope.spawn(move || {
                    let seed = seeding::ordinal_seed(problem);
                    let run = SymGd::with_config(SymGdConfig {
                        cell_size: cell,
                        adaptive: true,
                        total_time: Some(Duration::from_secs(budget)),
                        ..SymGdConfig::default()
                    })
                    .solve_on(router, problem, &seed);
                    let outcome = match run {
                        Ok(r) => BatchOutcome::SymGd(r),
                        Err(e) => BatchOutcome::Failed(format!("symgd failed: {e}")),
                    };
                    (i, outcome)
                }))
            })
            .collect();
        drivers
            .into_iter()
            .map(|d| d.join().expect("symgd driver thread panicked"))
            .collect()
    });
    for (i, outcome) in sym_outcomes {
        outcomes[i] = Some(outcome);
    }
    for (i, handle) in handles.into_iter().enumerate() {
        let Some(handle) = handle else { continue };
        outcomes[i] = Some(match handle.join() {
            Ok(sol) => BatchOutcome::Direct(sol),
            Err(e) => BatchOutcome::Failed(format!("solve failed: {e}")),
        });
    }

    // Report in submission order.
    let mut failures = 0usize;
    let total = queries.len();
    for (i, ((query, problem), outcome)) in queries.iter().zip(&outcomes).enumerate() {
        println!(
            "=== query {}/{}: {} ===",
            i + 1,
            total,
            query.data.display()
        );
        match outcome.as_ref().expect("every query has an outcome") {
            BatchOutcome::Direct(sol) if sol.status == SolveStatus::Rejected => {
                // A shed query has no incumbent to report: the run
                // queue was at --queue-cap when it arrived.
                println!("status: rejected (pool at capacity; re-submit)");
                failures += 1;
            }
            BatchOutcome::Direct(sol) if sol.status == SolveStatus::Failed => {
                // Every attempt the retry policy allowed ended in a
                // caught panic (or the serving pools died). The message
                // is deterministic so batch transcripts diff cleanly.
                println!("status: failed (job did not complete; retries exhausted)");
                failures += 1;
            }
            BatchOutcome::Direct(sol) => {
                report(problem, query, &sol.weights, sol.error, sol.optimal);
                println!("status: {}", status_label(sol.status));
            }
            BatchOutcome::SymGd(r) => {
                report(problem, query, &r.weights, r.error, false);
                println!("status: symgd ({} cell jobs)", r.iterations);
            }
            BatchOutcome::Failed(msg) => {
                println!("status: failed ({msg})");
                failures += 1;
            }
        }
    }
    let stats = router.stats();
    eprintln!(
        "router: {} admitted, {} rejected, {} migrated",
        stats.admissions, stats.rejections, stats.migrations
    );
    // Fault-tolerance counters get their own line, printed only when
    // something actually went wrong (or was retried) so healthy batch
    // transcripts stay byte-identical to previous releases.
    if stats.retries + stats.retries_exhausted + stats.quarantines > 0
        || stats.solver.job_panics + stats.solver.worker_respawns > 0
    {
        eprintln!(
            "faults: {} job panics, {} worker respawns, {} retries ({} exhausted), {} quarantines",
            stats.solver.job_panics,
            stats.solver.worker_respawns,
            stats.retries,
            stats.retries_exhausted,
            stats.quarantines
        );
    }
    if args.stats {
        // Aggregate over every completed job across all pools.
        report_stats(&stats.solver);
        if let Some(m) = &metrics {
            report_histograms(m);
        }
    }
    if let Some(path) = &args.stats_json {
        let mut obj = rankhow::obs::json::Obj::new();
        obj.field_raw("router", &stats.to_json());
        if let Err(msg) = write_json(path, "stats json", &obj.finish()) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    if let (Some(path), Some(m)) = (&args.metrics_out, &metrics) {
        if let Err(msg) = write_json(path, "metrics", &m.snapshot_json()) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = &args.trace_out {
        let traced = telemetries.iter().enumerate().filter_map(|(i, tel)| {
            let tel = tel.as_deref()?;
            let label = format!("query {}: {}", i + 1, queries[i].0.data.display());
            Some((i, tel, label))
        });
        if let Err(msg) = write_traces(dir, traced) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    if failures > 0 {
        eprintln!("{failures}/{total} queries failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_tokens(&tokens, true) {
        Ok(a) => a,
        Err(msg) => {
            if msg != "help requested" {
                eprintln!("error: {msg}");
            }
            usage();
        }
    };
    match &args.batch {
        Some(batch) => run_batch(&args, batch),
        None => run_single(&args),
    }
}
