//! `rankhow` — command-line scoring-function synthesis.
//!
//! ```text
//! rankhow <data.csv> [--ranking <ranking.csv>] [--k <K>] [--score-col <NAME>]
//!         [--eps <E>] [--eps1 <E1>] [--eps2 <E2>]
//!         [--min-weight <ATTR>=<LO>] [--max-weight <ATTR>=<HI>]
//!         [--symgd <CELL>] [--budget <SECONDS>] [--measure position|kendall|topweighted]
//!         [--threads <N>]
//! ```
//!
//! Input: a CSV of numeric attributes (header row). The given ranking
//! comes either from `--ranking` (a one-column CSV of positions, one row
//! per tuple, empty/0 = ⊥) or from `--score-col` + `--k` (rank the top-K
//! by a score column, then drop that column from the attributes).
//!
//! `--measure` selects the objective the solver *optimizes* (not merely
//! reports): Definition 3 position error, Kendall tau, or the
//! top-weighted variant.
//!
//! Output: the synthesized weights, the objective value, and the exact
//! verification verdict.

use rankhow::core::{seeding, verify, SolverConfig, SymGd, SymGdConfig};
use rankhow::prelude::*;
use rankhow::ranking::ErrorMeasure;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    data: PathBuf,
    ranking: Option<PathBuf>,
    score_col: Option<String>,
    k: usize,
    eps: f64,
    eps1: f64,
    eps2: f64,
    min_weights: Vec<(String, f64)>,
    max_weights: Vec<(String, f64)>,
    symgd_cell: Option<f64>,
    budget: u64,
    measure: ErrorMeasure,
    threads: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: rankhow <data.csv> [--ranking pos.csv | --score-col NAME] [--k K]\n\
         \x20      [--eps E] [--eps1 E1] [--eps2 E2] [--min-weight A=L] [--max-weight A=H]\n\
         \x20      [--symgd CELL] [--budget SECS] [--measure position|kendall|topweighted]\n\
         \x20      [--threads N]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        data: PathBuf::new(),
        ranking: None,
        score_col: None,
        k: 10,
        eps: 1e-6,
        eps1: 1e-4,
        eps2: 0.0,
        min_weights: Vec::new(),
        max_weights: Vec::new(),
        symgd_cell: None,
        budget: 30,
        measure: ErrorMeasure::Position,
        threads: rankhow::core::default_threads(),
    };
    let mut it = std::env::args().skip(1);
    let mut positional = Vec::new();
    while let Some(a) = it.next() {
        let mut next = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--ranking" => args.ranking = Some(PathBuf::from(next())),
            "--score-col" => args.score_col = Some(next()),
            "--k" => args.k = next().parse().unwrap_or_else(|_| usage()),
            "--eps" => args.eps = next().parse().unwrap_or_else(|_| usage()),
            "--eps1" => args.eps1 = next().parse().unwrap_or_else(|_| usage()),
            "--eps2" => args.eps2 = next().parse().unwrap_or_else(|_| usage()),
            "--budget" => args.budget = next().parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = next().parse().unwrap_or_else(|_| usage()),
            "--symgd" => args.symgd_cell = Some(next().parse().unwrap_or_else(|_| usage())),
            "--min-weight" | "--max-weight" => {
                let spec = next();
                let (attr, val) = spec.split_once('=').unwrap_or_else(|| usage());
                let val: f64 = val.parse().unwrap_or_else(|_| usage());
                if a == "--min-weight" {
                    args.min_weights.push((attr.to_string(), val));
                } else {
                    args.max_weights.push((attr.to_string(), val));
                }
            }
            "--measure" => {
                args.measure = match next().as_str() {
                    "position" => ErrorMeasure::Position,
                    "kendall" => ErrorMeasure::KendallTau,
                    "topweighted" => ErrorMeasure::TopWeighted,
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 1 {
        usage();
    }
    args.data = PathBuf::from(&positional[0]);
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut data = match Dataset::from_csv(&args.data) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error reading {}: {e}", args.data.display());
            return ExitCode::FAILURE;
        }
    };

    // Resolve the given ranking.
    let given = if let Some(path) = &args.ranking {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error reading {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let positions: Vec<Option<u32>> = text
            .lines()
            .skip(1) // header
            .filter(|l| !l.trim().is_empty())
            .map(|l| match l.trim().parse::<u32>() {
                Ok(0) | Err(_) => None,
                Ok(p) => Some(p),
            })
            .collect();
        match GivenRanking::from_positions(positions) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("invalid ranking: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(col) = &args.score_col {
        let Some(idx) = data.attr_index(col) else {
            eprintln!("no column named {col}");
            return ExitCode::FAILURE;
        };
        let scores: Vec<f64> = data.col(idx).to_vec();
        let keep: Vec<usize> = (0..data.m()).filter(|&j| j != idx).collect();
        data = data.select_attrs(&keep);
        match GivenRanking::from_scores(&scores, args.k.min(scores.len()), 0.0) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("invalid ranking: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("need --ranking or --score-col");
        return ExitCode::FAILURE;
    };

    // Constraints.
    let mut constraints = WeightConstraints::none();
    for (attr, lo) in &args.min_weights {
        let Some(idx) = data.attr_index(attr) else {
            eprintln!("no column named {attr}");
            return ExitCode::FAILURE;
        };
        constraints = constraints.min_weight(idx, *lo);
    }
    for (attr, hi) in &args.max_weights {
        let Some(idx) = data.attr_index(attr) else {
            eprintln!("no column named {attr}");
            return ExitCode::FAILURE;
        };
        constraints = constraints.max_weight(idx, *hi);
    }

    let tol = Tolerances::explicit(args.eps, args.eps1, args.eps2);
    let problem = match OptProblem::with_all(data, given, constraints, tol) {
        Ok(p) => p.with_objective(args.measure),
        Err(e) => {
            eprintln!("invalid problem: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "instance: n={}, m={}, k={}",
        problem.n(),
        problem.m(),
        problem.given.k()
    );

    // Solve.
    let (weights, error, optimal) = if let Some(cell) = args.symgd_cell {
        let seed = seeding::ordinal_seed(&problem);
        match SymGd::with_config(SymGdConfig {
            cell_size: cell,
            adaptive: true,
            total_time: Some(Duration::from_secs(args.budget)),
            threads: args.threads,
            ..SymGdConfig::default()
        })
        .solve(&problem, &seed)
        {
            Ok(r) => (r.weights, r.error, false),
            Err(e) => {
                eprintln!("symgd failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let seed = seeding::ordinal_seed(&problem);
        match rankhow::core::RankHow::with_config(SolverConfig {
            time_limit: Some(Duration::from_secs(args.budget)),
            warm_start: Some(seed),
            threads: args.threads,
            ..SolverConfig::default()
        })
        .solve(&problem)
        {
            Ok(s) => (s.weights, s.error, s.optimal),
            Err(e) => {
                eprintln!("solve failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    // Report.
    println!("weights:");
    for (name, w) in problem.data.names().iter().zip(&weights) {
        if *w > 1e-9 {
            println!("  {name:<16} {w:.6}");
        }
    }
    let label = match args.measure {
        ErrorMeasure::Position => "position error",
        ErrorMeasure::KendallTau => "kendall-tau error",
        ErrorMeasure::TopWeighted => "top-weighted error",
    };
    println!(
        "{label}: {error}{}",
        if optimal { " (proved optimal)" } else { "" }
    );
    if args.measure != ErrorMeasure::Position {
        // Also report plain Definition 3 error for comparability.
        println!("position error: {}", problem.evaluate(&weights));
    }
    match verify::verify(&problem, &weights) {
        Some(rep) if rep.consistent => println!("exact verification: PASS"),
        Some(rep) => println!(
            "exact verification: MISMATCH (exact {}, f64 {})",
            rep.exact_error, rep.f64_error
        ),
        None => println!("exact verification: skipped (non-finite input)"),
    }
    ExitCode::SUCCESS
}
