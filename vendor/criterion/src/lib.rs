//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the surface its benches consume: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], `bench_function` / `bench_with_input`, `Bencher::iter`,
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Timing is a
//! simple mean over a fixed-duration wall-clock loop — no warmup phases,
//! outlier analysis, plots, or HTML reports.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a free argument;
        // `--bench`/`--test` style flags are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_millis(500),
            filter,
        }
    }
}

impl Criterion {
    /// Set the target number of iterations per measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Set the wall-clock budget for one measurement.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &id,
            self.filter.as_deref(),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Override the iteration target for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(
            &full,
            self.criterion.filter.as_deref(),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
            f,
        );
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        run_one(
            &full,
            self.criterion.filter.as_deref(),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
            |b| f(b, input),
        );
        self
    }

    /// End the group. (No-op beyond consuming `self`.)
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark: `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `BenchmarkId::new("algo", n)` renders as `algo/n`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Handed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times back-to-back.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    filter: Option<&str>,
    sample_size: usize,
    budget: Duration,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    // One calibration pass, then as many timed iterations as fit the
    // budget (capped by sample_size).
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let fit = (budget.as_nanos() / per_iter.as_nanos()).max(1) as u64;
    let iters = fit.min(sample_size as u64);
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed / (iters.max(1) as u32);
    println!("bench {id:<50} {mean:>12.2?}/iter ({iters} iters)");
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
