//! Value-generation strategies: the random half of proptest, without
//! shrinking. A [`Strategy`] knows how to produce one random value from a
//! [`TestRng`]; combinators compose them.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A source of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: Debug;

    /// Produce one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every produced value with `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Produce a value, then use it to pick a second-stage strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Keep only values satisfying `f`; other draws are retried.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy producing `T`.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Uniform (or weighted) choice among same-typed strategies; the
/// expansion target of `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    /// Uniform choice.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.len() as u64;
        Union {
            arms: arms.into_iter().map(|s| (1u32, s)).collect(),
            total,
        }
    }

    /// Weighted choice.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    (float: $($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
    (int: $($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
// f32 is deliberately absent (see the note in vendor/rand): a second
// float impl would make `{float}` literal ranges ambiguous.
impl_range_strategy!(float: f64);
impl_range_strategy!(int: u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7
);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7,
    S8 / 8
);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7,
    S8 / 8,
    S9 / 9
);
