//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draw an arbitrary value of `Self`.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    // Finite doubles only: NaN/inf hosts almost never want them by default.
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        let m: f64 = rng.rng.gen();
        let e: i32 = rng.rng.gen_range(-64..64);
        (m * 2.0 - 1.0) * 2f64.powi(e)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
