//! Fixed-size array strategies (`prop::array::uniformN`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `[S::Value; N]` from one element strategy.
pub struct UniformArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn new_value(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.new_value(rng))
    }
}

macro_rules! uniform_fn {
    ($($name:ident => $n:literal),+ $(,)?) => {$(
        /// Array strategy drawing every element from `element`.
        pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
            UniformArrayStrategy { element }
        }
    )+};
}

uniform_fn! {
    uniform1 => 1,
    uniform2 => 2,
    uniform3 => 3,
    uniform4 => 4,
    uniform5 => 5,
    uniform6 => 6,
    uniform7 => 7,
    uniform8 => 8,
}
