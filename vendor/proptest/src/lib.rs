//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the surface its tests consume: the [`proptest!`] macro, the
//! [`strategy::Strategy`] combinators (`prop_map`, `prop_flat_map`,
//! `boxed`), range / tuple / array / collection strategies,
//! [`prop_oneof!`], `any::<T>()`, and the `prop_assert*` family.
//!
//! Differences from upstream, chosen deliberately for this repo:
//! - **No shrinking.** A failing case panics with the un-shrunk input.
//! - **Deterministic seeding.** Each test's RNG seed is derived from the
//!   test's name, so `cargo test` is reproducible run-to-run (upstream
//!   seeds from the OS by default). Set `PROPTEST_RNG_SEED` to an
//!   integer to explore a different deterministic universe.

#![deny(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary;
pub mod array;
pub mod collection;

/// One-stop import for tests: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     fn commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// // In a test module you would add `#[test]` above the fn; here the
/// // doctest drives it directly.
/// commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal muncher for [`proptest!`]; expands one `fn` at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_proptest(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
                ($($strat,)+),
                |__proptest_values| {
                    let ($($arg,)+) = __proptest_values;
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Assert inside a proptest body; failure rejects the case with a message
/// instead of unwinding, matching upstream semantics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs != rhs, $($fmt)*);
    }};
}

/// Discard the current case (it does not count towards `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)*)),
            );
        }
    };
}

/// Uniformly pick one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat),)+
        ])
    };
}
