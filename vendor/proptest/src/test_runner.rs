//! The case loop behind the `proptest!` macro: configuration, the
//! deterministic per-test RNG, and failure/rejection plumbing.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Runner configuration. Only the knobs this workspace uses.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required per test.
    pub cases: u32,
    /// Abort after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config that differs from the default only in the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property is false for this input: the whole test fails.
    Fail(String),
    /// `prop_assume!` rejected the input: draw another one.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Build a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// The RNG handed to strategies. Wraps the vendored [`StdRng`] so every
/// strategy draws from one deterministic stream per test.
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Seeded constructor; the seed is derived from the test name unless
    /// `PROPTEST_RNG_SEED` overrides it.
    pub fn for_test(name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_RNG_SEED") {
            Ok(s) => {
                let base: u64 = s
                    .parse()
                    .unwrap_or_else(|_| panic!("PROPTEST_RNG_SEED must be an integer, got {s:?}"));
                let mut h = DefaultHasher::new();
                name.hash(&mut h);
                base ^ h.finish()
            }
            Err(_) => {
                let mut h = DefaultHasher::new();
                name.hash(&mut h);
                h.finish()
            }
        };
        TestRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

/// Drive one property test: draw inputs, run the body, panic on the
/// first failing case with the offending input (no shrinking).
pub fn run_proptest<S: Strategy>(
    config: ProptestConfig,
    name: &str,
    strategy: S,
    body: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::for_test(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let value = strategy.new_value(&mut rng);
        let rendered = format!("{value:?}");
        match body(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest {name}: too many rejected cases \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "proptest {name} failed after {passed} passing case(s)\n\
                     input: {rendered}\n{reason}"
                );
            }
        }
    }
}
