//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the exact surface it consumes: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], plus [`Rng::gen`] / [`Rng::gen_range`].
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is exactly what reproducible tests need.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small integer seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`
    /// (uniform `[0, 1)` for floats, uniform over all values for ints).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..1.0)`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::X
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types that can be drawn from the standard distribution.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type X;
    /// Draw one value from `rng`; panics on an empty range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::X;
}

impl SampleRange for Range<f64> {
    type X = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type X = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

// NOTE: no f32 range impl — a `{float}` literal range would then be
// ambiguous between two candidate impls and break inference at call
// sites like `rng.gen_range(-4.0..4.0)`. The workspace only samples f64.

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type X = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type X = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ with SplitMix64
    /// seed expansion. Not the same stream as upstream `rand`'s `StdRng`
    /// (ChaCha12), but the same contract: seeded, fast, well mixed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0..5);
            assert!((0..5).contains(&i));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let n = rng.gen_range(-1_000_000i64..1_000_000);
            assert!((-1_000_000..1_000_000).contains(&n));
        }
    }

    #[test]
    fn extreme_integer_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let _ = rng.gen_range(0u64..u64::MAX);
            let _ = rng.gen_range(i64::MIN..i64::MAX);
            let x = rng.gen_range(3usize..4);
            assert_eq!(x, 3);
        }
    }
}
