//! Constraint exploration — the Example 1 workflow.
//!
//! ```text
//! cargo run --release --example constraint_exploration
//! ```
//!
//! The paper's core interaction loop: solve, inspect the weights, add a
//! constraint encoding domain knowledge ("points must matter", "the MVP
//! must stay #1", "player A above player B"), re-solve, repeat. Each
//! step explores a different region of the weight simplex and reports
//! how much ranking accuracy the constraint costs.

use rankhow::core::extensions::{require_first, require_order};
use rankhow::core::SolverError;
use rankhow::prelude::*;
use rankhow_data::nba;

fn report(step: &str, problem: &OptProblem, result: Result<Solution, SolverError>) {
    match result {
        Ok(sol) => {
            let names = problem.data.names();
            let pretty: Vec<String> = sol
                .weights
                .iter()
                .zip(names)
                .filter(|(w, _)| **w > 1e-3)
                .map(|(w, n)| format!("{w:.2}·{n}"))
                .collect();
            println!(
                "{step:<28} error {:>2}  f(x) = {}",
                sol.error,
                pretty.join(" + ")
            );
        }
        Err(SolverError::Infeasible) => {
            println!("{step:<28} INFEASIBLE — the constraints contradict each other");
        }
        Err(e) => println!("{step:<28} failed: {e}"),
    }
}

fn main() {
    // A simulated NBA season: 200 player-seasons, the panel's MVP vote
    // as the given ranking over the players that received votes.
    let season = nba::generate(200, 7);
    let vote = nba::mvp_vote(&season, 100, 11);
    let full = season.dataset.select_rows(&vote.voted_players);
    let attrs: Vec<usize> = ["PTS", "REB", "AST", "STL", "BLK"]
        .iter()
        .map(|n| full.attr_index(n).expect("known attribute"))
        .collect();
    let data = full.select_attrs(&attrs).min_max_normalized();
    let problem = OptProblem::with_tolerances(data, vote.ranking.clone(), Tolerances::paper_nba())
        .expect("valid problem");

    println!("=== Example 1 constraint-exploration loop ===\n");

    // Step 0: unconstrained optimum.
    let free = RankHow::new().solve(&problem);
    report("unconstrained", &problem, free);

    // Step 1: "points scored should feature prominently" — w_PTS ≥ 0.1.
    let pts_floor = problem
        .clone()
        .with_constraints(WeightConstraints::none().min_weight(0, 0.1))
        .expect("attribute in range");
    report("w_PTS ≥ 0.1", &pts_floor, RankHow::new().solve(&pts_floor));

    // Step 2: bound the *sum* of the defensive skills (STL + BLK ≤ 0.3).
    let defense_cap = problem
        .clone()
        .with_constraints(WeightConstraints::none().max_group(&[3, 4], 0.3))
        .expect("attributes in range");
    report(
        "w_STL + w_BLK ≤ 0.3",
        &defense_cap,
        RankHow::new().solve(&defense_cap),
    );

    // Step 3: the #1 player of the vote must stay #1.
    let number_one = problem
        .given
        .top_k()
        .iter()
        .copied()
        .find(|&t| problem.given.position(t) == Some(1))
        .expect("π has a #1");
    let pinned = problem
        .clone()
        .with_constraints(require_first(
            WeightConstraints::none(),
            &problem,
            number_one,
        ))
        .expect("valid constraints");
    report("MVP pinned to #1", &pinned, RankHow::new().solve(&pinned));

    // Step 4: a pairwise order — the #2 player must outscore the #3.
    let by_pos = |p: u32| {
        problem
            .given
            .top_k()
            .iter()
            .copied()
            .find(|&t| problem.given.position(t) == Some(p))
            .expect("position occupied")
    };
    let ordered = problem
        .clone()
        .with_constraints(require_order(
            WeightConstraints::none(),
            &problem.data,
            by_pos(2),
            by_pos(3),
            problem.tol.eps1,
        ))
        .expect("valid constraints");
    report(
        "#2 above #3 enforced",
        &ordered,
        RankHow::new().solve(&ordered),
    );

    // Step 5: outcome constraints — nobody may move more than 2 ranks.
    let banded = problem
        .clone()
        .with_positions(PositionConstraints::none().max_displacement(&problem.given, 2))
        .expect("ranked tuples only");
    report(
        "±2 displacement band",
        &banded,
        RankHow::new().solve(&banded),
    );

    println!("\nEach row is one loop iteration: constrain → re-solve → compare.");
}
