//! Figures 1 and 2: the weight-space geometry of OPT.
//!
//! ```text
//! cargo run --release --example geometry
//! ```
//!
//! Prints the indicator hyperplanes of Example 4's three-tuple instance
//! (Fig. 2: two lines crossing the simplex triangle; δ_ts touching only
//! a corner) and locates the "star" region where the given ranking is
//! recovered exactly.

use rankhow::prelude::*;
use rankhow_core::formulation;

fn main() {
    // Example 4: r = (3,2,8), s = (4,1,15), t = (1,1,14); π = [1, 2, ⊥].
    let data = rankhow_data::Dataset::from_rows(
        vec!["A1".into(), "A2".into(), "A3".into()],
        vec![
            vec![3.0, 2.0, 8.0],
            vec![4.0, 1.0, 15.0],
            vec![1.0, 1.0, 14.0],
        ],
    )
    .unwrap();
    let names = ["r", "s", "t"];
    let given = GivenRanking::from_positions(vec![Some(1), Some(2), None]).unwrap();
    let problem = OptProblem::new(data, given).unwrap();

    println!("indicator hyperplanes (Fig. 2): Σ w_i · diff_i = 0 with");
    for (s, r, diff) in formulation::indicator_hyperplanes(&problem) {
        println!(
            "  δ_{}{}: diff = {:?}  (\"{}\" beats \"{}\"?)",
            names[s], names[r], diff, names[s], names[r]
        );
    }
    println!(
        "\nδ_sr: w1 − w2 + 7·w3 > 0   (Example 4's first indicator)\n\
         δ_tr: −2·w1 − w2 + 6·w3 > 0 (its second)"
    );

    // Where each indicator can still go (over the whole simplex):
    let sys = formulation::reduce_global(&problem);
    println!(
        "\nindicators still undecided over the simplex: {}",
        sys.pairs.len()
    );
    for (idx, p) in sys.pairs.iter().enumerate() {
        let lo = formulation::box_simplex_min(sys.diff(idx), &sys.box_lo, &sys.box_hi).unwrap();
        let hi = formulation::box_simplex_max(sys.diff(idx), &sys.box_lo, &sys.box_hi).unwrap();
        println!(
            "  δ_{}{}: score-difference range [{lo:.2}, {hi:.2}] — crosses 0",
            names[p.s], names[sys.top[p.slot]]
        );
    }

    // The star of Fig. 2: a weight vector recovering π exactly, found by
    // the solver; the intersection δ_tr = 0 ∧ δ_sr = 0 ("small w1,
    // large w2, very small w3").
    let sol = RankHow::new().solve(&problem).unwrap();
    println!(
        "\nthe star (error {}): w = {:?}",
        sol.error,
        sol.weights
            .iter()
            .map(|w| (w * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    let scores = rankhow::ranking::scores_f64(problem.data.features(), &sol.weights);
    println!(
        "scores: r={:.3}, s={:.3}, t={:.3} → ranking [r, s, t] as required",
        scores[0], scores[1], scores[2]
    );
    assert_eq!(sol.error, 0);
    assert!(
        sol.weights[1] > sol.weights[0] && sol.weights[0] > sol.weights[2] || sol.weights[1] > 0.5,
        "the zero-error region has large w2"
    );

    // Fig. 1's message: tie lines partition weight space. Show the error
    // at a few sample points on both sides of δ_sr's line.
    println!("\nFig. 1: position error across weight space:");
    for w in [
        [0.05, 0.90, 0.05],
        [0.10, 0.80, 0.10],
        [0.33, 0.34, 0.33],
        [0.80, 0.10, 0.10],
        [0.10, 0.10, 0.80],
    ] {
        println!("  w = {w:?} → error {}", problem.evaluate(&w));
    }
}
