//! The CSRankings workflow: many attributes, rank windows, SYM-GD.
//!
//! ```text
//! cargo run --release --example csrankings
//! ```
//!
//! Explains a geometric-mean institution ranking with a linear function
//! over 27 per-area publication counts, fits an interior rank window
//! (positions 30–50 — the "university wanting to climb" use case), and
//! compares the exact solver against SYM-GD.

use rankhow::prelude::*;
use rankhow_core::{extensions, seeding, SolverConfig, SymGdConfig};
use rankhow_data::csrankings;
use std::time::Duration;

fn main() {
    let gen = csrankings::generate(628, 628);
    let data = gen.dataset.min_max_normalized();

    // --- Top-10 fit with the exact solver ---
    let given = gen.default_ranking(10);
    let problem = OptProblem::with_tolerances(data.clone(), given, Tolerances::paper_csrankings())
        .expect("valid problem");
    let exact = RankHow::with_config(SolverConfig {
        time_limit: Some(Duration::from_secs(15)),
        ..SolverConfig::default()
    })
    .solve(&problem)
    .expect("solve");
    println!(
        "top-10 fit: error {} ({})",
        exact.error,
        if exact.optimal {
            "optimal"
        } else {
            "budget hit"
        }
    );
    let top_areas: Vec<(String, f64)> = problem
        .data
        .names()
        .iter()
        .zip(&exact.weights)
        .filter(|(_, &w)| w > 0.02)
        .map(|(n, &w)| (n.clone(), (w * 100.0).round() / 100.0))
        .collect();
    println!("areas carrying weight: {top_areas:?}");

    // --- SYM-GD on the same instance ---
    let seed = seeding::ordinal_seed(&problem);
    let sym = SymGd::with_config(SymGdConfig {
        cell_size: 0.05,
        ..SymGdConfig::default()
    })
    .solve(&problem, &seed)
    .expect("symgd");
    println!(
        "SYM-GD: error {} in {} cell solves (exact: {})",
        sym.error, sym.iterations, exact.error
    );

    // --- Rank window: positions 30–50 of the full ranking ---
    let full_positions: Vec<u32> = {
        let ranks = score_ranks(&gen.geo_mean, 0.0);
        // geo_mean is "bigger is better": score_ranks gives positions.
        ranks
    };
    let window = extensions::window_ranking(&full_positions, 30, 50).expect("window");
    println!("\nrank window 30–50 covers {} institutions", window.k());
    let wproblem = OptProblem::with_tolerances(data, window, Tolerances::paper_csrankings())
        .expect("valid problem");
    let wsol = RankHow::with_config(SolverConfig {
        time_limit: Some(Duration::from_secs(15)),
        ..SolverConfig::default()
    })
    .solve(&wproblem)
    .expect("solve");
    println!(
        "window fit: error {} over k={} ({})",
        wsol.error,
        wproblem.given.k(),
        if wsol.optimal {
            "optimal"
        } else {
            "budget hit"
        }
    );
}
