//! Quickstart: synthesize a linear scoring function for a ranking.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! We generate a small dataset, rank it with a *hidden* weight vector,
//! hand RankHow only the ranking, and watch it recover a function that
//! reproduces the ranking exactly.

use rankhow::prelude::*;
use rankhow_data::{rankfns, synthetic};

fn main() {
    // 1. A dataset: 60 tuples, 4 attributes, uniform random.
    let data = synthetic::generate(synthetic::Distribution::Uniform, 60, 4, 42);

    // 2. A given ranking produced by a hidden linear function.
    let hidden = [0.45, 0.25, 0.20, 0.10];
    let given = rankfns::linear_ranking(&data, &hidden, 10);
    println!("given top-10 tuples: {:?}", given.top_k());

    // 3. Synthesize: RankHow sees only (data, ranking).
    let problem = OptProblem::new(data, given).expect("valid problem");
    let solution = RankHow::new().solve(&problem).expect("solve");

    println!("synthesized weights: {:?}", solution.weights);
    println!(
        "position error: {} (optimal: {})",
        solution.error, solution.optimal
    );
    assert_eq!(solution.error, 0, "a perfect linear function exists");

    // 4. The solution is verified with exact rational arithmetic.
    let report = rankhow::core::verify::verify(&problem, &solution.weights).unwrap();
    println!(
        "exact verification: error {} — consistent: {}",
        report.exact_error, report.consistent
    );
}
