//! Alternative objectives — the Section II generalization in practice.
//!
//! ```text
//! cargo run --release --example objectives_tour
//! ```
//!
//! One dataset, one given ranking, three objectives: Definition 3
//! position error, Kendall tau (inverted pairs), and the top-weighted
//! variant that penalizes mistakes near the head of the ranking. The
//! same exact solver optimizes each; the example prints how the choice
//! of objective changes both the synthesized function and how its
//! errors are distributed across positions.

use rankhow::core::SolverConfig;
use rankhow::prelude::*;
use rankhow_data::{rankfns, synthetic};
use std::time::Duration;

fn main() {
    // Anti-correlated data is the adversarial case for linear scoring:
    // no function gets everything right, so the objective's preference
    // structure becomes visible.
    let data = synthetic::generate(synthetic::Distribution::AntiCorrelated, 60, 4, 9);
    let given = rankfns::sum_pow_ranking(&data, 3, 8);
    let problem = OptProblem::with_tolerances(data, given, Tolerances::paper_synthetic())
        .expect("valid problem");
    let budget = SolverConfig {
        time_limit: Some(Duration::from_secs(15)),
        ..SolverConfig::default()
    };

    println!("=== one ranking, three objectives ===\n");
    let mut solutions = Vec::new();
    for measure in [
        ErrorMeasure::Position,
        ErrorMeasure::KendallTau,
        ErrorMeasure::TopWeighted,
    ] {
        let p = problem.clone().with_objective(measure);
        let sol = RankHow::with_config(budget.clone())
            .solve(&p)
            .expect("solve");
        println!(
            "{measure:?}: objective value {} (optimal: {})",
            sol.error, sol.optimal
        );
        solutions.push((measure, sol));
    }

    // Cross-evaluate: each synthesized function under every measure.
    println!("\ncross-evaluation (rows: optimized-for; columns: measured-as)");
    println!(
        "{:<14} {:>10} {:>12} {:>13}",
        "", "position", "kendall_tau", "top_weighted"
    );
    for (measure, sol) in &solutions {
        let row: Vec<u64> = [
            ErrorMeasure::Position,
            ErrorMeasure::KendallTau,
            ErrorMeasure::TopWeighted,
        ]
        .iter()
        .map(|&m| {
            problem
                .clone()
                .with_objective(m)
                .objective_value(&sol.weights)
        })
        .collect();
        println!(
            "{:<14} {:>10} {:>12} {:>13}",
            format!("{measure:?}"),
            row[0],
            row[1],
            row[2]
        );
    }

    // Where do the residual mistakes sit? Top-weighted should push them
    // toward the bottom of the top-k.
    println!("\nper-position displacement (π → ρ):");
    for (measure, sol) in &solutions {
        let scores = rankhow::ranking::scores_f64(problem.data.features(), &sol.weights);
        let mut rows: Vec<(u32, u32)> = problem
            .given
            .top_k()
            .iter()
            .map(|&t| {
                (
                    problem.given.position(t).unwrap(),
                    rankhow::ranking::rank_of_in(&scores, t, problem.tol.eps),
                )
            })
            .collect();
        rows.sort_unstable();
        let disp: Vec<String> = rows.iter().map(|(pi, rho)| format!("{pi}→{rho}")).collect();
        println!("  {measure:?}: {}", disp.join("  "));
    }

    // The SMT-style alternative: binary search over satisfiability
    // probes of the same encoding, on a smaller instance (each probe is
    // a full generic-MILP solve — the cost the paper's Section III-A
    // remark warns about).
    let small_data = synthetic::generate(synthetic::Distribution::AntiCorrelated, 25, 4, 10);
    let small_given = rankfns::sum_pow_ranking(&small_data, 3, 5);
    let small =
        OptProblem::with_tolerances(small_data, small_given, problem.tol).expect("valid problem");
    let sat = SatSearch::with_config(rankhow::core::SatSearchConfig {
        time_limit: Some(Duration::from_secs(20)),
        ..Default::default()
    })
    .solve(&small)
    .expect("solve");
    println!(
        "\nSatSearch on the 25-tuple slice: error {} in {} probes (optimal: {})",
        sat.error,
        sat.probes.len(),
        sat.optimal
    );
}
