//! Section VI-F workflow: when the hidden ranking function is non-linear,
//! derived attributes let a *linear* function express it.
//!
//! ```text
//! cargo run --release --example derived_attributes
//! ```
//!
//! The given ranking comes from `Σ A_i³` — no linear function over the
//! original attributes is exact. Adding squared attributes `A_i²`
//! shrinks the error substantially (the paper's Fig. 3m–o effect); this
//! is the "kernel trick" remark from the introduction.

use rankhow::prelude::*;
use rankhow_core::{seeding, SymGd, SymGdConfig};
use rankhow_data::{rankfns, synthetic};

fn main() {
    // Uniform data with a steep exponent: the hardest of the paper's
    // generalizability settings (Fig. 3m), where the derived-attribute
    // improvement is most visible.
    let base = synthetic::generate(synthetic::Distribution::Uniform, 5_000, 5, 99);
    let given = rankfns::sum_pow_ranking(&base, 5, 15);

    // --- Original attributes only ---
    let p1 =
        OptProblem::with_tolerances(base.clone(), given.clone(), Tolerances::paper_synthetic())
            .expect("valid");
    let seed1 = seeding::ordinal_seed(&p1);
    let r1 = SymGd::with_config(SymGdConfig {
        cell_size: 0.02,
        ..SymGdConfig::default()
    })
    .solve(&p1, &seed1)
    .expect("symgd");
    println!(
        "original attributes (m=5):   error {} ({:.2}/tuple)",
        r1.error,
        r1.error as f64 / 15.0
    );

    // --- With derived squares A_i² (m = 10) ---
    let augmented = base.with_squared_attrs();
    let p2 = OptProblem::with_tolerances(augmented, given, Tolerances::paper_synthetic())
        .expect("valid");
    let seed2 = seeding::ordinal_seed(&p2);
    let r2 = SymGd::with_config(SymGdConfig {
        cell_size: 0.02,
        ..SymGdConfig::default()
    })
    .solve(&p2, &seed2)
    .expect("symgd");
    println!(
        "with derived squares (m=10): error {} ({:.2}/tuple)",
        r2.error,
        r2.error as f64 / 15.0
    );
    println!(
        "\nweights on derived attributes: {:?}",
        p2.data
            .names()
            .iter()
            .zip(&r2.weights)
            .filter(|(_, &w)| w > 1e-3)
            .map(|(n, &w)| (n.clone(), (w * 1000.0).round() / 1000.0))
            .collect::<Vec<_>>()
    );
    assert!(
        r2.error <= r1.error,
        "derived attributes must not hurt ({} vs {})",
        r2.error,
        r1.error
    );
}
