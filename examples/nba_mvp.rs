//! Example 1 from the paper: the NBA MVP workflow.
//!
//! ```text
//! cargo run --release --example nba_mvp
//! ```
//!
//! A simulated panel of 100 voters picks the MVP. RankHow explains the
//! resulting ranking with a linear function over the eight basic stats,
//! then explores alternatives under Example 1's constraints: a minimum
//! weight on points scored, a bound on the defensive-skill group, and a
//! pinned winner.

use rankhow::prelude::*;
use rankhow_core::{extensions, SolverConfig};
use rankhow_data::nba;
use std::time::Duration;

fn main() {
    // A league of 1500 player-seasons and an MVP vote.
    let gen = nba::generate(1500, 7);
    let vote = nba::mvp_vote(&gen, 100, 7);
    println!(
        "{} players received votes; totals {:?}",
        vote.voted_players.len(),
        vote.points
    );

    let data = gen
        .dataset
        .select_rows(&vote.voted_players)
        .min_max_normalized();
    let problem = OptProblem::with_tolerances(data, vote.ranking.clone(), Tolerances::paper_nba())
        .expect("valid problem");

    let budget = SolverConfig {
        time_limit: Some(Duration::from_secs(10)),
        ..SolverConfig::default()
    };
    let base = RankHow::with_config(budget.clone())
        .solve(&problem)
        .expect("solve");
    println!(
        "\nunconstrained: error {} — weights {:?}",
        base.error,
        named(&problem, &base.weights)
    );

    // Constraint 1 (Example 1): points must feature prominently.
    let pts = problem.data.attr_index("PTS").unwrap();
    let constrained = problem
        .clone()
        .with_constraints(WeightConstraints::none().min_weight(pts, 0.1))
        .unwrap();
    let sol = RankHow::with_config(budget.clone())
        .solve(&constrained)
        .expect("solve");
    println!(
        "\nwith w_PTS ≥ 0.1: error {} — weights {:?}",
        sol.error,
        named(&problem, &sol.weights)
    );

    // Constraint 2: bound the defensive group (STL + BLK + REB ≥ 0.2).
    let defensive: Vec<usize> = ["REB", "STL", "BLK"]
        .iter()
        .map(|a| problem.data.attr_index(a).unwrap())
        .collect();
    let grouped = problem
        .clone()
        .with_constraints(WeightConstraints::none().min_group(&defensive, 0.2))
        .unwrap();
    let sol = RankHow::with_config(budget.clone())
        .solve(&grouped)
        .expect("solve");
    println!(
        "\nwith defensive group ≥ 0.2: error {} — weights {:?}",
        sol.error,
        named(&problem, &sol.weights)
    );

    // Constraint 3: the winner must be ranked first (score dominance
    // version — a weight-space constraint).
    let pinned = problem
        .clone()
        .with_constraints(extensions::require_first(
            WeightConstraints::none(),
            &problem,
            0,
        ))
        .unwrap();
    match RankHow::with_config(budget.clone()).solve(&pinned) {
        Ok(sol) => {
            let ranks = score_ranks(
                &rankhow::ranking::scores_f64(pinned.data.features(), &sol.weights),
                pinned.tol.eps,
            );
            println!(
                "\nwith the MVP pinned to #1: error {}, MVP rank {}",
                sol.error, ranks[0]
            );
        }
        Err(_) => println!("\nwith the MVP pinned to #1: infeasible"),
    }

    // Constraint 4 (Example 1's position windows): no voted player may
    // move more than 2 positions from the panel's placement.
    let banded = problem
        .clone()
        .with_positions(PositionConstraints::none().max_displacement(&problem.given, 2))
        .unwrap();
    match RankHow::with_config(budget).solve(&banded) {
        Ok(sol) => println!(
            "\nwith every player within ±2 positions: error {} — weights {:?}",
            sol.error,
            named(&problem, &sol.weights)
        ),
        Err(_) => println!("\nwith every player within ±2 positions: infeasible"),
    }
}

/// Pretty-print weights with attribute names.
fn named(problem: &OptProblem, w: &[f64]) -> Vec<(String, f64)> {
    problem
        .data
        .names()
        .iter()
        .zip(w)
        .filter(|(_, &v)| v > 1e-6)
        .map(|(n, &v)| (n.clone(), (v * 1000.0).round() / 1000.0))
        .collect()
}
